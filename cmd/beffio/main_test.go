package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke tests for the built binary: exit codes, usage text, and one
// fast end-to-end checked run on a tiny machine definition.

var bin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "beffio-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "beffio")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

// tinyConfig is a 1 MB-per-proc machine with a small filesystem:
// M_PART stays at the 2 MB floor and a -T 0.05 run finishes in
// milliseconds.
func tinyConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.json")
	cfg := `{"key":"tiny","name":"tiny test box","maxProcs":4,"memoryPerProcMB":1,
	 "fabric":{"aggregateGBps":1,"latencyUs":5},
	 "nic":{"txGBps":1,"rxGBps":1,"portGBps":1,"sendOverheadUs":2,"recvOverheadUs":2,"memcpyGBps":2},
	 "fs":{"servers":2,"stripeKB":64,"blockKB":16,"writeMBps":100,"readMBps":100,"seekMs":1,
	       "requestOverheadUs":50,"cachePerServerMB":8,"memoryGBps":1,"clientMBps":0}}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnknownFlagFailsWithUsage(t *testing.T) {
	out, code := run(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(out, "Usage") {
		t.Fatalf("no usage text:\n%s", out)
	}
}

func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-procs", "0"},
		{"-T", "0"},
		{"-T", "-5"},
		{"-load", "1"},
		{"-load", "-0.1"},
		{"-maxreps", "0"},
		{"-reps", "0"},
		{"-seed", "-1"},
	} {
		out, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v accepted", args)
		}
		if !strings.Contains(out, "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestUnreadableConfigFails(t *testing.T) {
	out, code := run(t, "-config", filepath.Join(t.TempDir(), "absent.json"))
	if code == 0 {
		t.Fatal("unreadable config accepted")
	}
	if !strings.Contains(out, "beffio:") {
		t.Fatalf("no error message:\n%s", out)
	}
}

func TestMachineWithoutIOModelFails(t *testing.T) {
	// sr2201 has no fs model; the error must say so rather than panic.
	out, code := run(t, "-machine", "sr2201", "-procs", "2", "-T", "0.05")
	if code == 0 {
		t.Fatalf("machine without I/O model accepted:\n%s", out)
	}
	if !strings.Contains(out, "I/O model") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}

func TestBadSweepListFails(t *testing.T) {
	out, code := run(t, "-config", tinyConfig(t), "-sweep", "2,x,4")
	if code == 0 {
		t.Fatal("malformed -sweep accepted")
	}
	if !strings.Contains(out, "partition size") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}

// workloadSpec writes a tiny two-phase workload spec for CLI tests.
func workloadSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wl.json")
	spec := `{"name":"cli-smoke","seed":3,"phases":[
	  {"name":"w","pattern":{"op":"shared","count":2,"chunk":16384}},
	  {"name":"r","pattern":{"op":"shared","count":2,"chunk":16384,"read":true}}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWorkloadRunSucceeds(t *testing.T) {
	out, code := run(t, "-config", tinyConfig(t), "-procs", "2", "-workload", workloadSpec(t), "-check")
	if code != 0 {
		t.Fatalf("workload run failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"check: all invariants held", "workload: cli-smoke", "aggregate:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadJSONOutputIsDeterministic(t *testing.T) {
	spec := workloadSpec(t)
	a, code := run(t, "-config", tinyConfig(t), "-procs", "2", "-workload", spec, "-json")
	if code != 0 {
		t.Fatalf("workload -json failed (%d):\n%s", code, a)
	}
	if !strings.HasPrefix(a, "{") || !strings.Contains(a, `"Name": "cli-smoke"`) {
		t.Fatalf("not canonical JSON:\n%s", a)
	}
	b, _ := run(t, "-config", tinyConfig(t), "-procs", "2", "-workload", spec, "-json")
	if a != b {
		t.Fatalf("two runs differ:\n%s\n%s", a, b)
	}
}

func TestWorkloadFlagConflictsRejected(t *testing.T) {
	spec := workloadSpec(t)
	for _, args := range [][]string{
		{"-config", "", "-workload", spec, "-sweep", "2,4"},
		{"-config", "", "-workload", spec, "-detail"},
	} {
		args[1] = tinyConfig(t)
		out, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v accepted", args)
		}
		if !strings.Contains(out, "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestWorkloadBadSpecFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","phases":[{"name":"p","pattern":{"op":"warp","chunk":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "-config", tinyConfig(t), "-procs", "2", "-workload", path)
	if code == 0 {
		t.Fatalf("malformed workload spec accepted:\n%s", out)
	}
	if !strings.Contains(out, "beffio:") {
		t.Fatalf("no error message:\n%s", out)
	}
}

func TestCheckedRunSucceeds(t *testing.T) {
	out, code := run(t, "-config", tinyConfig(t), "-procs", "2", "-T", "0.05", "-check")
	if code != 0 {
		t.Fatalf("checked run failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "check: all invariants held") {
		t.Fatalf("no check confirmation:\n%s", out)
	}
	if !strings.Contains(out, "b_eff_io") {
		t.Fatalf("no result line:\n%s", out)
	}
}
