// Command beffio runs the effective I/O bandwidth benchmark on a
// simulated machine profile and prints the summary and, optionally,
// the Fig.-4-style detail protocol.
//
// Usage:
//
//	beffio -machine sp -procs 32
//	beffio -machine t3e -procs 16 -T 120 -detail
//	beffio -machine sx5 -procs 4 -csv io.csv
//	beffio -machine sp -sweep 8,16,32,64
//	beffio -machine sp -procs 8 -perturb io-hiccup -seed 3 -reps 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/mpiio"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/prof"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/simfs"
	"github.com/hpcbench/beff/internal/stats"
)

func main() {
	var (
		machineKey = flag.String("machine", "cluster", "machine profile key (must have an I/O model)")
		configPath = flag.String("config", "", "JSON machine definition file (overrides -machine)")
		procs      = flag.Int("procs", 8, "number of I/O processes")
		tSecs      = flag.Float64("T", 60, "scheduled time per partition in virtual seconds (paper: >= 900)")
		geometric  = flag.Bool("geometric", false, "use geometric termination batching (the paper's §5.4 proposal)")
		noCB       = flag.Bool("no-collective-buffering", false, "disable two-phase collective I/O (ablation)")
		skipType3  = flag.Bool("skip-type3", false, "omit pattern type 3, as parts of the paper's own data do")
		randomExt  = flag.Bool("random", false, "also measure the §6 random-access extension (reported separately)")
		bgLoad     = flag.Float64("load", 0, "background I/O load fraction [0,1): non-dedicated-system mode")
		detail     = flag.Bool("detail", false, "print the per-pattern protocol and Fig.-4-style chart")
		csvPath    = flag.String("csv", "", "write the detail protocol as CSV to this file")
		sweep      = flag.String("sweep", "", "comma-separated partition sizes; runs each and reports the system maximum")
		maxReps    = flag.Int("maxreps", 1<<14, "cap repetitions per pattern (bounds simulation cost)")
		perturbArg = flag.String("perturb", "", "fault-injection profile: preset name ("+strings.Join(perturb.Presets(), ", ")+") or JSON file; empty disables perturbation")
		seed       = flag.Int64("seed", 1, "seed for the -perturb fault schedule")
		reps       = flag.Int("reps", 1, "repetitions of the whole benchmark; with -perturb each uses an independently derived seed and the maximum is reported")
		checkRun   = flag.Bool("check", false, "verify runtime invariants (byte conservation, causality, reductions) and fail on violation")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	switch {
	case *procs < 1:
		usageErr("-procs must be >= 1, got %d", *procs)
	case *tSecs <= 0:
		usageErr("-T must be positive, got %v", *tSecs)
	case *bgLoad < 0 || *bgLoad >= 1:
		usageErr("-load must be in [0,1), got %v", *bgLoad)
	case *maxReps < 1:
		usageErr("-maxreps must be >= 1, got %d", *maxReps)
	case *reps < 1:
		usageErr("-reps must be >= 1, got %d", *reps)
	case *seed < 1:
		usageErr("-seed must be >= 1, got %d", *seed)
	}

	defer func() { fatal(prof.WriteHeap(*memProfile)) }()
	stopCPU, err := prof.StartCPU(*cpuProfile)
	fatal(err)
	defer stopCPU()

	var p *machine.Profile
	if *configPath != "" {
		p, err = machine.LoadConfig(*configPath)
	} else {
		p, err = machine.Lookup(*machineKey)
	}
	fatal(err)

	opt := beffio.Options{
		T:                   des.DurationOf(*tSecs),
		MPart:               p.MPart(),
		GeometricBatching:   *geometric,
		Info:                mpiio.Info{NoCollectiveBuffering: *noCB},
		MaxRepsPerPattern:   *maxReps,
		MeasureRandomAccess: *randomExt,
	}
	if *skipType3 {
		opt.SkipTypes = []beffio.PatternType{beffio.Segmented}
	}

	var pert *perturb.Profile
	if *perturbArg != "" {
		pert, err = perturb.Load(*perturbArg)
		fatal(err)
		fmt.Printf("perturbation: %s (seed %d)\n", pert.Name, *seed)
	}

	// setupWith builds the per-run world; the perturbation profile is
	// applied inside the closure so every fresh world of a -sweep or
	// -reps run gets the fault schedule for its own seed.
	setupWith := func(perturbSeed int64) func(int) (mpi.WorldConfig, *simfs.FS, error) {
		return func(n int) (mpi.WorldConfig, *simfs.FS, error) {
			w, err := p.BuildIOWorld(n)
			if err != nil {
				return mpi.WorldConfig{}, nil, err
			}
			if p.FS == nil {
				return mpi.WorldConfig{}, nil, fmt.Errorf("machine %s has no I/O model", p.Key)
			}
			fsCfg := *p.FS
			fsCfg.BackgroundLoad = *bgLoad
			fs, err := simfs.New(fsCfg)
			if err != nil {
				return mpi.WorldConfig{}, nil, err
			}
			pert.Apply(w.Net, fs, perturbSeed)
			return w, fs, nil
		}
	}

	// runOne executes the benchmark once, with the full invariant watch
	// set installed when -check is on (chained after the perturbation,
	// which is applied by setupWith inside the world builder).
	runOne := func(w mpi.WorldConfig, fs *simfs.FS) (*beffio.Result, error) {
		if !*checkRun {
			return beffio.Run(w, fs, opt)
		}
		c := check.New()
		c.WatchWorld(&w)
		c.WatchNet(w.Net)
		c.WatchFS(fs)
		res, err := beffio.Run(w, fs, opt)
		if err != nil {
			return nil, err
		}
		c.VerifyBeffIO(res)
		if err := c.Finish(); err != nil {
			return nil, err
		}
		return res, nil
	}

	if *sweep != "" {
		sizes, err := parseSizes(*sweep)
		fatal(err)
		results, err := beffio.Sweep(setupWith(*seed), sizes, opt)
		fatal(err)
		if *checkRun {
			// The sweep builds its worlds internally, so the runtime
			// watches cannot chain in; the result-level invariants still
			// hold for every partition.
			c := check.New()
			for _, r := range results {
				c.VerifyBeffIO(r)
			}
			fatal(c.Finish())
			fmt.Println("check: all result invariants held")
		}
		series := report.Series{Name: p.Name, Points: map[int]float64{}}
		for _, r := range results {
			series.Points[r.Procs] = r.BeffIO
		}
		fmt.Print(report.SweepChart("b_eff_io over partition sizes (Fig. 3 / Fig. 5 shape)", []report.Series{series}))
		best := beffio.SystemValue(results)
		fmt.Printf("\nsystem b_eff_io = %.1f MB/s (at %d processes, T = %v)\n",
			best.BeffIO/1e6, best.Procs, best.T)
		return
	}

	if *reps > 1 {
		// Whole-benchmark repetitions: each runs against a fresh world
		// and filesystem under an independently derived fault-schedule
		// seed, and the maximum over repetitions is reported (the
		// paper's rule for repeated measurements).
		values := make([]float64, 0, *reps)
		for r := 0; r < *reps; r++ {
			rs := perturb.RepSeed(*seed, r)
			w, fs, err := setupWith(rs)(*procs)
			fatal(err)
			res, err := runOne(w, fs)
			fatal(err)
			values = append(values, res.BeffIO)
			fmt.Printf("rep %2d (seed %20d): b_eff_io = %9.1f MB/s\n", r, rs, res.BeffIO/1e6)
		}
		s := stats.Describe(values...)
		fmt.Printf("\nmin / median / max = %.1f / %.1f / %.1f MB/s   mean %.1f   CV %.2f%%\n",
			s.Min/1e6, s.Median/1e6, s.Max/1e6, s.Mean/1e6, 100*s.CV)
		fmt.Printf("reported b_eff_io (max over %d repetitions) = %.1f MB/s (%d processes, T = %v)\n",
			*reps, s.Max/1e6, *procs, opt.T)
		return
	}

	w, fs, err := setupWith(*seed)(*procs)
	fatal(err)
	res, err := runOne(w, fs)
	fatal(err)
	if *checkRun {
		fmt.Println("check: all invariants held")
	}

	fmt.Printf("machine: %s   filesystem: %s\n", p.Name, fs.Config().Name)
	fmt.Printf("b_eff_io = %.1f MB/s (%d processes, T = %v)\n", res.BeffIO/1e6, res.Procs, res.T)
	for _, mr := range res.Methods {
		fmt.Printf("  %-13v %9.1f MB/s\n", mr.Method, mr.BW/1e6)
	}
	if *detail {
		fmt.Println()
		fmt.Print(report.BeffIOProtocol(res))
		fmt.Println()
		fmt.Print(report.Fig4Chart(res))
	}
	if len(res.RandomAccess) > 0 {
		fmt.Println("\nrandom-access extension (§6; not part of the b_eff_io average):")
		for _, m := range res.RandomAccess {
			fmt.Printf("  chunk %8d B: read %8.1f MB/s  write %8.1f MB/s\n",
				m.Chunk, m.ReadBW/1e6, m.WriteBW/1e6)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatal(err)
		fatal(report.BeffIOCSV(f, p.Key, res))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad partition size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "beffio:", err)
		os.Exit(1)
	}
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "beffio: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
