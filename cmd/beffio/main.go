// Command beffio runs the effective I/O bandwidth benchmark on a
// simulated machine profile and prints the summary and, optionally,
// the Fig.-4-style detail protocol.
//
// Usage:
//
//	beffio -machine sp -procs 32
//	beffio -machine t3e -procs 16 -T 120 -detail
//	beffio -machine sx5 -procs 4 -csv io.csv
//	beffio -machine sp -sweep 8,16,32,64
//	beffio -machine sp -procs 8 -perturb io-hiccup -seed 3 -reps 3
//	beffio -machine sp -procs 16 -progress -metrics io.ndjson
//	beffio -machine bb -procs 8 -workload examples/workloads/bursty.json
//	beffio -machine dragonfly -procs 16 -workload spec.json -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/mpiio"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/simfs"
	"github.com/hpcbench/beff/internal/stats"
	"github.com/hpcbench/beff/internal/workload"
)

func main() {
	c := cli.New("beffio")
	c.MachineFlags(nil)
	c.ConfigFlag(nil)
	c.SeedFlag(nil, "seed for the -perturb fault schedule")
	c.RepsFlag(nil, 1, "repetitions of the whole benchmark; with -perturb each uses an independently derived seed and the maximum is reported")
	c.PerturbFlag(nil, "")
	c.ShardsFlag(nil)
	c.CheckFlag(nil, false)
	c.ProfileFlags(nil)
	c.ObsFlags(nil)
	var (
		tSecs     = flag.Float64("T", 60, "scheduled time per partition in virtual seconds (paper: >= 900)")
		geometric = flag.Bool("geometric", false, "use geometric termination batching (the paper's §5.4 proposal)")
		noCB      = flag.Bool("no-collective-buffering", false, "disable two-phase collective I/O (ablation)")
		skipType3 = flag.Bool("skip-type3", false, "omit pattern type 3, as parts of the paper's own data do")
		randomExt = flag.Bool("random", false, "also measure the §6 random-access extension (reported separately)")
		bgLoad    = flag.Float64("load", 0, "background I/O load fraction [0,1): non-dedicated-system mode")
		detail    = flag.Bool("detail", false, "print the per-pattern protocol and Fig.-4-style chart")
		csvPath   = flag.String("csv", "", "write the detail protocol as CSV to this file")
		sweep     = flag.String("sweep", "", "comma-separated partition sizes; runs each and reports the system maximum")
		maxReps   = flag.Int("maxreps", 1<<14, "cap repetitions per pattern (bounds simulation cost)")
		wlPath    = flag.String("workload", "", "run a workload-grammar spec (JSON file, see docs/API.md) instead of the Table-2 benchmark")
		wlJSON    = flag.Bool("json", false, "with -workload: print the result as canonical JSON (the golden-corpus encoding)")
	)
	flag.Parse()

	c.Validate()
	switch {
	case *tSecs <= 0:
		c.UsageErr("-T must be positive, got %v", *tSecs)
	case *bgLoad < 0 || *bgLoad >= 1:
		c.UsageErr("-load must be in [0,1), got %v", *bgLoad)
	case *maxReps < 1:
		c.UsageErr("-maxreps must be >= 1, got %d", *maxReps)
	}

	stopProf := c.StartProfiling()
	defer stopProf()

	if c.Shards > 1 {
		// The sharded executor covers the message-passing benchmark
		// only: b_eff_io's I/O phases couple every rank through shared
		// filesystem server state, so its schedule has no quiescent
		// cuts to slice at. -shards is accepted for CLI uniformity and
		// runs the sequential engine (results are identical either way).
		fmt.Fprintf(os.Stderr, "beffio: -shards %d noted; the I/O benchmark runs on the sequential engine\n", c.Shards)
	}

	p, err := c.LoadMachine()
	c.Fatal(err)

	o := c.StartObs()

	opt := beffio.Options{
		T:                   des.DurationOf(*tSecs),
		MPart:               p.MPart(),
		GeometricBatching:   *geometric,
		Info:                mpiio.Info{NoCollectiveBuffering: *noCB},
		MaxRepsPerPattern:   *maxReps,
		MeasureRandomAccess: *randomExt,
	}
	if *skipType3 {
		opt.SkipTypes = []beffio.PatternType{beffio.Segmented}
	}
	o.InstrumentIO(&opt.Info)

	pert, err := c.LoadPerturb()
	c.Fatal(err)
	if pert != nil {
		fmt.Printf("perturbation: %s (seed %d)\n", pert.Name, c.Seed)
	}

	// setupWith builds the per-run world; the perturbation profile and
	// the obs instruments are applied inside the closure so every fresh
	// world of a -sweep or -reps run gets the fault schedule for its
	// own seed and accumulates into the shared registry. All of them
	// attach through composable Observer registrations, so their order
	// does not matter.
	setupWith := func(perturbSeed int64) func(int) (mpi.WorldConfig, *simfs.FS, error) {
		return func(n int) (mpi.WorldConfig, *simfs.FS, error) {
			w, err := p.BuildIOWorld(n)
			if err != nil {
				return mpi.WorldConfig{}, nil, err
			}
			if p.FS == nil {
				return mpi.WorldConfig{}, nil, fmt.Errorf("machine %s has no I/O model", p.Key)
			}
			fsCfg := *p.FS
			fsCfg.BackgroundLoad = *bgLoad
			fs, err := simfs.New(fsCfg)
			if err != nil {
				return mpi.WorldConfig{}, nil, err
			}
			o.InstrumentWorld(&w)
			o.InstrumentNet(w.Net)
			o.InstrumentFS(fs)
			pert.Apply(w.Net, fs, perturbSeed)
			return w, fs, nil
		}
	}

	// runOne executes the benchmark once, with the full invariant watch
	// set installed when -check is on.
	runOne := func(w mpi.WorldConfig, fs *simfs.FS) (*beffio.Result, error) {
		if !c.Check {
			return beffio.Run(w, fs, opt)
		}
		chk := check.New()
		chk.WatchWorld(&w)
		chk.WatchNet(w.Net)
		chk.WatchFS(fs)
		res, err := beffio.Run(w, fs, opt)
		if err != nil {
			return nil, err
		}
		chk.VerifyBeffIO(res)
		if err := chk.Finish(); err != nil {
			return nil, err
		}
		return res, nil
	}

	o.StartTicker()

	if *wlPath != "" {
		switch {
		case *sweep != "":
			c.UsageErr("-workload and -sweep are mutually exclusive")
		case *detail || *csvPath != "" || *randomExt:
			c.UsageErr("-detail, -csv and -random describe the Table-2 benchmark, not -workload runs")
		}
		spec, err := workload.ParseFile(*wlPath)
		c.Fatal(err)
		c.Fatal(spec.Runnable())

		runWL := func(perturbSeed int64) *workload.Result {
			w, fs, err := setupWith(perturbSeed)(c.Procs)
			c.Fatal(err)
			var chk *check.Checker
			if c.Check {
				chk = check.New()
				chk.WatchWorld(&w)
				chk.WatchNet(w.Net)
				chk.WatchFS(fs)
			}
			res, err := workload.Run(w, fs, spec)
			c.Fatal(err)
			if chk != nil {
				c.Fatal(chk.Finish())
			}
			return res
		}

		if c.Reps > 1 {
			values := make([]float64, 0, c.Reps)
			lines := make([]string, 0, c.Reps)
			for r := 0; r < c.Reps; r++ {
				rs := perturb.RepSeed(c.Seed, r)
				res := runWL(rs)
				values = append(values, res.BW)
				lines = append(lines, fmt.Sprintf("rep %2d (seed %20d): %9.1f MB/s", r, rs, res.BW/1e6))
			}
			o.Close()
			for _, l := range lines {
				fmt.Println(l)
			}
			s := stats.Describe(values...)
			fmt.Printf("\nmin / median / max = %.1f / %.1f / %.1f MB/s   mean %.1f   CV %.2f%%\n",
				s.Min/1e6, s.Median/1e6, s.Max/1e6, s.Mean/1e6, 100*s.CV)
			fmt.Printf("workload %s: max over %d repetitions = %.1f MB/s (%d processes)\n",
				spec.Name, c.Reps, s.Max/1e6, c.Procs)
			return
		}

		res := runWL(c.Seed)
		o.Close()
		if *wlJSON {
			data, err := json.MarshalIndent(res, "", "  ")
			c.Fatal(err)
			os.Stdout.Write(append(data, '\n'))
			return
		}
		if c.Check {
			fmt.Println("check: all invariants held")
		}
		fmt.Printf("machine: %s   workload: %s (seed %d, %d processes)\n", p.Name, res.Name, res.Seed, res.Procs)
		for _, ph := range res.Phases {
			fmt.Printf("  %-14s %8d ops  %12d B read  %12d B written  %9.1f MB/s\n",
				ph.Name, ph.Ops, ph.ReadBytes, ph.WriteBytes, ph.BW/1e6)
		}
		fmt.Printf("aggregate: %d B in %.4f s = %.1f MB/s\n", res.TotalBytes, res.Seconds, res.BW/1e6)
		return
	}

	if *sweep != "" {
		sizes, err := parseSizes(*sweep)
		c.Fatal(err)
		results, err := beffio.Sweep(setupWith(c.Seed), sizes, opt)
		o.Close()
		c.Fatal(err)
		if c.Check {
			// The sweep builds its worlds internally, so the runtime
			// watches cannot chain in; the result-level invariants still
			// hold for every partition.
			chk := check.New()
			for _, r := range results {
				chk.VerifyBeffIO(r)
			}
			c.Fatal(chk.Finish())
			fmt.Println("check: all result invariants held")
		}
		series := report.Series{Name: p.Name, Points: map[int]float64{}}
		for _, r := range results {
			series.Points[r.Procs] = r.BeffIO
		}
		fmt.Print(report.SweepChart("b_eff_io over partition sizes (Fig. 3 / Fig. 5 shape)", []report.Series{series}))
		best := beffio.SystemValue(results)
		fmt.Printf("\nsystem b_eff_io = %.1f MB/s (at %d processes, T = %v)\n",
			best.BeffIO/1e6, best.Procs, best.T)
		return
	}

	if c.Reps > 1 {
		// Whole-benchmark repetitions: each runs against a fresh world
		// and filesystem under an independently derived fault-schedule
		// seed, and the maximum over repetitions is reported (the
		// paper's rule for repeated measurements).
		values := make([]float64, 0, c.Reps)
		lines := make([]string, 0, c.Reps)
		for r := 0; r < c.Reps; r++ {
			rs := perturb.RepSeed(c.Seed, r)
			w, fs, err := setupWith(rs)(c.Procs)
			c.Fatal(err)
			res, err := runOne(w, fs)
			c.Fatal(err)
			values = append(values, res.BeffIO)
			lines = append(lines, fmt.Sprintf("rep %2d (seed %20d): b_eff_io = %9.1f MB/s", r, rs, res.BeffIO/1e6))
		}
		o.Close()
		for _, l := range lines {
			fmt.Println(l)
		}
		s := stats.Describe(values...)
		fmt.Printf("\nmin / median / max = %.1f / %.1f / %.1f MB/s   mean %.1f   CV %.2f%%\n",
			s.Min/1e6, s.Median/1e6, s.Max/1e6, s.Mean/1e6, 100*s.CV)
		fmt.Printf("reported b_eff_io (max over %d repetitions) = %.1f MB/s (%d processes, T = %v)\n",
			c.Reps, s.Max/1e6, c.Procs, opt.T)
		return
	}

	w, fs, err := setupWith(c.Seed)(c.Procs)
	c.Fatal(err)
	res, err := runOne(w, fs)
	o.Close()
	c.Fatal(err)
	if c.Check {
		fmt.Println("check: all invariants held")
	}

	fmt.Printf("machine: %s   filesystem: %s\n", p.Name, fs.Config().Name)
	fmt.Printf("b_eff_io = %.1f MB/s (%d processes, T = %v)\n", res.BeffIO/1e6, res.Procs, res.T)
	for _, mr := range res.Methods {
		fmt.Printf("  %-13v %9.1f MB/s\n", mr.Method, mr.BW/1e6)
	}
	if *detail {
		fmt.Println()
		fmt.Print(report.BeffIOProtocol(res))
		fmt.Println()
		fmt.Print(report.Fig4Chart(res))
	}
	if len(res.RandomAccess) > 0 {
		fmt.Println("\nrandom-access extension (§6; not part of the b_eff_io average):")
		for _, m := range res.RandomAccess {
			fmt.Printf("  chunk %8d B: read %8.1f MB/s  write %8.1f MB/s\n",
				m.Chunk, m.ReadBW/1e6, m.WriteBW/1e6)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		c.Fatal(err)
		c.Fatal(report.BeffIOCSV(f, p.Key, res))
		c.Fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad partition size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
