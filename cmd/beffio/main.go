// Command beffio runs the effective I/O bandwidth benchmark on a
// simulated machine profile and prints the summary and, optionally,
// the Fig.-4-style detail protocol.
//
// Usage:
//
//	beffio -machine sp -procs 32
//	beffio -machine t3e -procs 16 -T 120 -detail
//	beffio -machine sx5 -procs 4 -csv io.csv
//	beffio -machine sp -sweep 8,16,32,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/mpiio"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/simfs"
)

func main() {
	var (
		machineKey = flag.String("machine", "cluster", "machine profile key (must have an I/O model)")
		configPath = flag.String("config", "", "JSON machine definition file (overrides -machine)")
		procs      = flag.Int("procs", 8, "number of I/O processes")
		tSecs      = flag.Float64("T", 60, "scheduled time per partition in virtual seconds (paper: >= 900)")
		geometric  = flag.Bool("geometric", false, "use geometric termination batching (the paper's §5.4 proposal)")
		noCB       = flag.Bool("no-collective-buffering", false, "disable two-phase collective I/O (ablation)")
		skipType3  = flag.Bool("skip-type3", false, "omit pattern type 3, as parts of the paper's own data do")
		randomExt  = flag.Bool("random", false, "also measure the §6 random-access extension (reported separately)")
		bgLoad     = flag.Float64("load", 0, "background I/O load fraction [0,1): non-dedicated-system mode")
		detail     = flag.Bool("detail", false, "print the per-pattern protocol and Fig.-4-style chart")
		csvPath    = flag.String("csv", "", "write the detail protocol as CSV to this file")
		sweep      = flag.String("sweep", "", "comma-separated partition sizes; runs each and reports the system maximum")
		maxReps    = flag.Int("maxreps", 1<<14, "cap repetitions per pattern (bounds simulation cost)")
	)
	flag.Parse()

	var p *machine.Profile
	var err error
	if *configPath != "" {
		p, err = machine.LoadConfig(*configPath)
	} else {
		p, err = machine.Lookup(*machineKey)
	}
	fatal(err)

	opt := beffio.Options{
		T:                   des.DurationOf(*tSecs),
		MPart:               p.MPart(),
		GeometricBatching:   *geometric,
		Info:                mpiio.Info{NoCollectiveBuffering: *noCB},
		MaxRepsPerPattern:   *maxReps,
		MeasureRandomAccess: *randomExt,
	}
	if *skipType3 {
		opt.SkipTypes = []beffio.PatternType{beffio.Segmented}
	}

	setup := func(n int) (mpi.WorldConfig, *simfs.FS, error) {
		w, err := p.BuildIOWorld(n)
		if err != nil {
			return mpi.WorldConfig{}, nil, err
		}
		if p.FS == nil {
			return mpi.WorldConfig{}, nil, fmt.Errorf("machine %s has no I/O model", p.Key)
		}
		fsCfg := *p.FS
		fsCfg.BackgroundLoad = *bgLoad
		fs, err := simfs.New(fsCfg)
		return w, fs, err
	}

	if *sweep != "" {
		sizes, err := parseSizes(*sweep)
		fatal(err)
		results, err := beffio.Sweep(setup, sizes, opt)
		fatal(err)
		series := report.Series{Name: p.Name, Points: map[int]float64{}}
		for _, r := range results {
			series.Points[r.Procs] = r.BeffIO
		}
		fmt.Print(report.SweepChart("b_eff_io over partition sizes (Fig. 3 / Fig. 5 shape)", []report.Series{series}))
		best := beffio.SystemValue(results)
		fmt.Printf("\nsystem b_eff_io = %.1f MB/s (at %d processes, T = %v)\n",
			best.BeffIO/1e6, best.Procs, best.T)
		return
	}

	w, fs, err := setup(*procs)
	fatal(err)
	res, err := beffio.Run(w, fs, opt)
	fatal(err)

	fmt.Printf("machine: %s   filesystem: %s\n", p.Name, fs.Config().Name)
	fmt.Printf("b_eff_io = %.1f MB/s (%d processes, T = %v)\n", res.BeffIO/1e6, res.Procs, res.T)
	for _, mr := range res.Methods {
		fmt.Printf("  %-13v %9.1f MB/s\n", mr.Method, mr.BW/1e6)
	}
	if *detail {
		fmt.Println()
		fmt.Print(report.BeffIOProtocol(res))
		fmt.Println()
		fmt.Print(report.Fig4Chart(res))
	}
	if len(res.RandomAccess) > 0 {
		fmt.Println("\nrandom-access extension (§6; not part of the b_eff_io average):")
		for _, m := range res.RandomAccess {
			fmt.Printf("  chunk %8d B: read %8.1f MB/s  write %8.1f MB/s\n",
				m.Chunk, m.ReadBW/1e6, m.WriteBW/1e6)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatal(err)
		fatal(report.BeffIOCSV(f, p.Key, res))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad partition size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "beffio:", err)
		os.Exit(1)
	}
}
