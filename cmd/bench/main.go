// Command bench is the simulator's performance harness: it runs
// fixed-seed b_eff and b_eff_io cells, measures the host-side cost of
// the simulation core (nanoseconds and heap allocations per simulated
// message, peak RSS), and writes the numbers as JSON so the perf
// trajectory of the hot paths is tracked in-repo from PR to PR.
//
// Usage:
//
//	bench                         # full cells, write BENCH_core.json
//	bench -quick                  # small cells, CI smoke
//	bench -baseline old.json      # embed old numbers and report speedups
//	bench -cpuprofile cpu.out     # profile the cells
//
// An "op" is one simulated message through the full des+simnet+mpi
// stack; ns/op and allocs/op are therefore the per-message cost the
// ROADMAP's "as fast as the hardware allows" goal cares about. Each
// cell also records its headline benchmark value (b_eff in MB/s), so a
// perf regression that changes results is caught by the same file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/mpi"
)

// CellResult is the measured cost of one benchmark cell.
type CellResult struct {
	Name       string  `json:"name"`
	Ops        int64   `json:"ops"`       // simulated messages
	WallSec    float64 `json:"wall_s"`    // best-of-iters wall clock
	NsPerOp    float64 `json:"ns_per_op"` // wall / messages
	AllocsPerA float64 `json:"allocs_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`  // heap bytes allocated / messages
	HeadlineMB float64 `json:"headline_mb_s"` // the cell's benchmark value, for result-drift detection
}

// Report is the schema of BENCH_core.json, and of one entry in a
// BENCH_*.json history (see History).
type Report struct {
	Generated string                `json:"generated"`
	GitSHA    string                `json:"git_sha,omitempty"` // commit the numbers were measured at (-sha)
	GoVersion string                `json:"go_version"`
	NumCPU    int                   `json:"num_cpu,omitempty"` // host cores: context for the sharded-cell walls
	Quick     bool                  `json:"quick,omitempty"`
	PeakRSSKB int64                 `json:"peak_rss_kb,omitempty"` // omitted where getrusage is unavailable
	Cells     []CellResult          `json:"cells"`
	Baseline  []CellResult          `json:"baseline,omitempty"`
	BaseRSSKB int64                 `json:"baseline_peak_rss_kb,omitempty"`
	Speedups  map[string]SpeedupRow `json:"speedups,omitempty"`
}

// SpeedupRow compares one cell against the baseline run.
type SpeedupRow struct {
	Wall   float64 `json:"wall"`   // baseline wall / current wall
	Allocs float64 `json:"allocs"` // baseline allocs/op / current allocs/op
}

// History is the multi-point trajectory schema: one Report per
// measured commit, oldest first. bench -append folds a gated run into
// it; -gate and -trend read either this shape or a bare single Report
// (the legacy BENCH_core.json layout).
type History struct {
	Entries []Report `json:"entries"`
}

// loadHistory reads a bench JSON file in either format: a History
// document (entries non-empty) or a legacy single Report, which loads
// as a one-entry history.
func loadHistory(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err == nil && len(h.Entries) > 0 {
		return h.Entries, nil
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: neither a bench history nor a bench report: %w", path, err)
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells (empty history?)", path)
	}
	return []Report{r}, nil
}

// isShardCell recognises cells measured through the sharded parallel
// executor. Their wall clock scales with host core count, so wall
// comparisons against a baseline recorded on a different NumCPU are
// meaningless and get skipped (allocs/op stays gated: the executor is
// deterministic regardless of parallelism).
func isShardCell(name string) bool { return strings.Contains(name, "_shards") }

// cell is one fixed-seed workload with a way to count its messages.
type cell struct {
	name string
	run  func() (ops int64, headlineMB float64, err error)
}

func cells(quick bool, shards int) []cell {
	beffCell := func(key string, procs, maxLoop int, skipAnalysis bool) cell {
		return cell{
			name: fmt.Sprintf("beff_%s_%d", key, procs),
			run: func() (int64, float64, error) {
				p, err := machine.Lookup(key)
				if err != nil {
					return 0, 0, err
				}
				w, err := p.BuildWorld(procs)
				if err != nil {
					return 0, 0, err
				}
				res, err := core.Run(w, core.Options{
					MemoryPerProc: p.MemoryPerProc,
					Seed:          1,
					MaxLooplength: maxLoop,
					Reps:          1,
					SkipAnalysis:  skipAnalysis,
				})
				if err != nil {
					return 0, 0, err
				}
				return w.Net.Messages(), res.Beff / 1e6, nil
			},
		}
	}
	// beffShardCell is the same workload through the sharded executor:
	// ops come from the executor's exact message accounting (equal to
	// the sequential count — see TestShardMessageParity), so ns/op is
	// directly comparable with the sequential twin. The wall delta
	// between the pair is the shard speedup on this host; it scales
	// with core count (speculative chain worlds run in parallel) and
	// degrades to roughly 1x on a single core.
	beffShardCell := func(key string, procs, maxLoop int, skipAnalysis bool) cell {
		return cell{
			name: fmt.Sprintf("beff_%s_%d_shards%d", key, procs, shards),
			run: func() (int64, float64, error) {
				p, err := machine.Lookup(key)
				if err != nil {
					return 0, 0, err
				}
				factory := func([]des.Time) (mpi.WorldConfig, error) { return p.BuildWorld(procs) }
				res, st, err := core.RunSharded(factory, core.Options{
					MemoryPerProc: p.MemoryPerProc,
					Seed:          1,
					MaxLooplength: maxLoop,
					Reps:          1,
					SkipAnalysis:  skipAnalysis,
				}, core.ShardOptions{Shards: shards})
				if err != nil {
					return 0, 0, err
				}
				return st.Messages, res.Beff / 1e6, nil
			},
		}
	}
	beffioCell := func(key string, procs int, t des.Duration) cell {
		return cell{
			name: fmt.Sprintf("beffio_%s_%d", key, procs),
			run: func() (int64, float64, error) {
				p, err := machine.Lookup(key)
				if err != nil {
					return 0, 0, err
				}
				w, err := p.BuildIOWorld(procs)
				if err != nil {
					return 0, 0, err
				}
				fs, err := p.BuildFS()
				if err != nil {
					return 0, 0, err
				}
				res, err := beffio.Run(w, fs, beffio.Options{T: t, MPart: p.MPart()})
				if err != nil {
					return 0, 0, err
				}
				return w.Net.Messages(), res.BeffIO / 1e6, nil
			},
		}
	}
	if quick {
		return []cell{
			beffCell("t3e", 16, 2, true),
			beffShardCell("t3e", 16, 2, true),
			beffioCell("t3e", 8, des.DurationOf(0.2)),
		}
	}
	return []cell{
		// The acceptance cell: 64 ranks on the torus machine, the
		// workload where slot scans, routing, and per-message
		// allocations dominate — sequential and sharded, as a
		// before/after pair.
		beffCell("t3e", 64, 4, false),
		beffShardCell("t3e", 64, 4, false),
		beffCell("cluster", 32, 4, true),
		beffioCell("t3e", 16, des.DurationOf(0.5)),
		// The -quick cells ride along so the CI gate (bench -quick
		// -gate) always finds its baselines in the committed report.
		beffCell("t3e", 16, 2, true),
		beffShardCell("t3e", 16, 2, true),
		beffioCell("t3e", 8, des.DurationOf(0.2)),
	}
}

func measure(c cell, iters int) (CellResult, error) {
	out := CellResult{Name: c.name}
	for it := 0; it < iters; it++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		ops, headline, err := c.run()
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return out, fmt.Errorf("cell %s: %w", c.name, err)
		}
		if ops <= 0 {
			return out, fmt.Errorf("cell %s: no messages simulated", c.name)
		}
		allocs := float64(after.Mallocs-before.Mallocs) / float64(ops)
		bytes := float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
		if it == 0 || wall < out.WallSec {
			out.WallSec = wall
			out.NsPerOp = wall * 1e9 / float64(ops)
		}
		if it == 0 || allocs < out.AllocsPerA {
			out.AllocsPerA = allocs
			out.BytesPerOp = bytes
		}
		out.Ops = ops
		out.HeadlineMB = headline
	}
	return out, nil
}

func main() {
	c := cli.New("bench")
	c.ProfileFlags(nil)
	var (
		quick    = flag.Bool("quick", false, "small cells for CI smoke runs")
		iters    = flag.Int("iters", 3, "repetitions per cell (best wall time counts)")
		out      = flag.String("o", "BENCH_core.json", "output JSON path ('-' for stdout only)")
		baseline = flag.String("baseline", "", "prior bench JSON to embed and compute speedups against")
		shards   = flag.Int("shards", 4, "worker count of the sharded executor cells")
		gate     = flag.String("gate", "", "regression gate: compare against this committed bench JSON (single report or history; latest entry counts) and exit 1 on >10% wall slowdown or any allocs/op increase")
		trend    = flag.String("trend", "", "trajectory gate: compare against the best historical point per cell in this bench history JSON and exit 1 on regression")
		appendTo = flag.String("append", "", "fold this run into the bench history JSON at this path (created if absent; skipped when a gate fails)")
		sha      = flag.String("sha", "", "git commit to record in the report, for history entries")
		date     = flag.String("date", "", "timestamp to record as generated (default: current UTC time; pin it for deterministic history entries)")
	)
	flag.Parse()
	c.Validate()
	switch {
	case *iters < 1:
		c.UsageErr("-iters must be >= 1, got %d", *iters)
	case *shards < 1:
		c.UsageErr("-shards must be >= 1, got %d", *shards)
	}

	fatal := c.Fatal
	stopProf := c.StartProfiling()

	rep := Report{
		Generated: *date,
		GitSHA:    *sha,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
	}
	if rep.Generated == "" {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	for _, c := range cells(*quick, *shards) {
		r, err := measure(c, *iters)
		fatal(err)
		fmt.Printf("%-20s %10d ops  %8.1f ns/op  %6.2f allocs/op  %8.1f B/op  wall %6.3fs  headline %.2f MB/s\n",
			r.Name, r.Ops, r.NsPerOp, r.AllocsPerA, r.BytesPerOp, r.WallSec, r.HeadlineMB)
		rep.Cells = append(rep.Cells, r)
	}
	stopProf()
	rep.PeakRSSKB = peakRSSKB()

	if *baseline != "" {
		var base Report
		data, err := os.ReadFile(*baseline)
		fatal(err)
		fatal(json.Unmarshal(data, &base))
		rep.Baseline = base.Cells
		rep.BaseRSSKB = base.PeakRSSKB
		rep.Speedups = map[string]SpeedupRow{}
		for _, b := range base.Cells {
			for _, c := range rep.Cells {
				if c.Name == b.Name && c.WallSec > 0 && c.AllocsPerA > 0 {
					row := SpeedupRow{
						Wall:   b.WallSec / c.WallSec,
						Allocs: b.AllocsPerA / c.AllocsPerA,
					}
					rep.Speedups[c.Name] = row
					fmt.Printf("%-20s speedup: %.2fx wall, %.2fx allocs/op\n", c.Name, row.Wall, row.Allocs)
				}
			}
		}
	}

	var gateFailures []string
	if *gate != "" || *trend != "" {
		var gateEntries, trendEntries []Report
		if *gate != "" {
			entries, err := loadHistory(*gate)
			fatal(err)
			gateEntries = entries
		}
		if *trend != "" {
			entries, err := loadHistory(*trend)
			fatal(err)
			trendEntries = entries
		}
		evaluate := func() (failures, suspects, notes []string) {
			if len(gateEntries) > 0 {
				latest := gateEntries[len(gateEntries)-1]
				f, s, n := runGate(&rep, latest.Cells, latest.NumCPU)
				failures, suspects, notes = append(failures, f...), append(suspects, s...), append(notes, n...)
			}
			if len(trendEntries) > 0 {
				f, s, n := runTrend(&rep, trendEntries)
				failures, suspects, notes = append(failures, f...), append(suspects, s...), append(notes, n...)
			}
			return failures, suspects, notes
		}
		// Allocation counts are deterministic, so that half of the gate
		// is judged immediately. Wall clock is noisy even best-of-iters
		// on shared runners, so a cell failing only on wall is
		// re-measured up to two extra rounds (keeping the overall best)
		// before the verdict sticks: a real slowdown survives
		// re-measurement, scheduler noise rarely does.
		byName := map[string]cell{}
		for _, cl := range cells(*quick, *shards) {
			byName[cl.name] = cl
		}
		var notes []string
		for round := 0; ; round++ {
			var suspects []string
			gateFailures, suspects, notes = evaluate()
			if len(suspects) == 0 || round == 2 {
				break
			}
			seen := map[string]bool{}
			fmt.Printf("gate: re-measuring %d wall-suspect cell(s), round %d/2\n", len(suspects), round+1)
			for _, name := range suspects {
				cl, ok := byName[name]
				if !ok || seen[name] {
					continue
				}
				seen[name] = true
				r, err := measure(cl, *iters)
				fatal(err)
				for i := range rep.Cells {
					if rep.Cells[i].Name != name {
						continue
					}
					if r.WallSec < rep.Cells[i].WallSec {
						rep.Cells[i].WallSec = r.WallSec
						rep.Cells[i].NsPerOp = r.NsPerOp
					}
					if r.AllocsPerA < rep.Cells[i].AllocsPerA {
						rep.Cells[i].AllocsPerA = r.AllocsPerA
						rep.Cells[i].BytesPerOp = r.BytesPerOp
					}
				}
			}
		}
		for _, n := range notes {
			fmt.Printf("gate: note: %s\n", n)
		}
	}

	if *appendTo != "" {
		if len(gateFailures) > 0 {
			fmt.Fprintln(os.Stderr, "bench: -append skipped: a gate failed")
		} else {
			// The history entry is the measurement alone — embedded
			// baselines and speedup tables are per-run context that would
			// bloat a committed trajectory.
			entry := rep
			entry.Baseline, entry.BaseRSSKB, entry.Speedups = nil, 0, nil
			var entries []Report
			if _, err := os.Stat(*appendTo); err == nil {
				entries, err = loadHistory(*appendTo)
				fatal(err)
			}
			entries = append(entries, entry)
			hdata, err := json.MarshalIndent(History{Entries: entries}, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*appendTo, append(hdata, '\n'), 0o644))
			fmt.Printf("appended to %s (%d entries)\n", *appendTo, len(entries))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		fatal(os.WriteFile(*out, data, 0o644))
		if rep.PeakRSSKB > 0 {
			fmt.Printf("wrote %s (peak RSS %d kB)\n", *out, rep.PeakRSSKB)
		} else {
			fmt.Printf("wrote %s\n", *out)
		}
	}
	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			fmt.Fprintf(os.Stderr, "bench: gate: %s\n", f)
		}
		os.Exit(1)
	}
}

// gateWallTolerance is the allowed relative wall-clock drift against
// the committed report before the gate fails the run.
const gateWallTolerance = 0.10

// runGate compares the fresh measurements against the committed cells
// and returns one message per violation — a wall slowdown beyond the
// tolerance, or any allocs/op growth (the simulator is deterministic,
// so allocation counts must not drift at all; a hair of slack absorbs
// runtime-internal noise) — plus the names of cells whose only offence
// is wall time, which the caller may re-measure before accepting the
// verdict, plus annotations for comparisons the gate skipped. Shard
// cells skip the wall comparison when the committed report was
// measured on a different core count (baseNumCPU vs the run's): their
// wall scales with parallelism, so a 1-CPU CI host would otherwise
// fail every shard cell a many-core dev box committed, and vice
// versa. Large improvements pass but are called out on stdout so the
// committed file gets regenerated. The deltas are recorded in the
// report (Baseline/Speedups), which CI uploads as the artifact.
func runGate(rep *Report, committed []CellResult, baseNumCPU int) (failures, wallSuspects, notes []string) {
	rep.Baseline = committed
	rep.Speedups = map[string]SpeedupRow{}
	cpuMismatch := baseNumCPU != 0 && rep.NumCPU != 0 && baseNumCPU != rep.NumCPU
	for _, cur := range rep.Cells {
		for _, base := range committed {
			if base.Name != cur.Name || base.WallSec <= 0 {
				continue
			}
			row := SpeedupRow{Wall: base.WallSec / cur.WallSec, Allocs: 0}
			if cur.AllocsPerA > 0 {
				row.Allocs = base.AllocsPerA / cur.AllocsPerA
			}
			rep.Speedups[cur.Name] = row
			if isShardCell(cur.Name) && cpuMismatch {
				notes = append(notes, fmt.Sprintf("%s: wall comparison skipped — committed on %d CPUs, running on %d (shard walls scale with cores; allocs/op still gated)",
					cur.Name, baseNumCPU, rep.NumCPU))
			} else {
				slow := cur.WallSec/base.WallSec - 1
				switch {
				case slow > gateWallTolerance:
					failures = append(failures, fmt.Sprintf("%s: wall %.3fs is %.0f%% over the committed %.3fs",
						cur.Name, cur.WallSec, slow*100, base.WallSec))
					wallSuspects = append(wallSuspects, cur.Name)
				case slow < -gateWallTolerance:
					fmt.Printf("%-20s gate: %.0f%% faster than the committed report — regenerate BENCH_core.json to keep it honest\n",
						cur.Name, -slow*100)
				}
			}
			if cur.AllocsPerA > base.AllocsPerA+1e-3 {
				failures = append(failures, fmt.Sprintf("%s: %.4f allocs/op, committed %.4f (allocation growth is gated at zero)",
					cur.Name, cur.AllocsPerA, base.AllocsPerA))
			}
		}
	}
	return failures, wallSuspects, notes
}

// runTrend gates the run against the best historical point per cell:
// across every history entry, the lowest wall (subject to the same
// shard-cell NumCPU guard as runGate — only entries measured on this
// core count count toward a shard cell's best wall) and the lowest
// allocs/op. A run may match the latest entry and still fail here if
// an older entry was better — the trajectory is not allowed to decay
// one tolerable step at a time.
func runTrend(rep *Report, hist []Report) (failures, wallSuspects, notes []string) {
	for _, cur := range rep.Cells {
		var bestWall, bestAllocs float64
		var bestWallAt, bestAllocsAt string
		wallSkipped := 0
		for _, h := range hist {
			cpuMismatch := h.NumCPU != 0 && rep.NumCPU != 0 && h.NumCPU != rep.NumCPU
			for _, base := range h.Cells {
				if base.Name != cur.Name || base.WallSec <= 0 {
					continue
				}
				if isShardCell(cur.Name) && cpuMismatch {
					wallSkipped++
				} else if bestWall == 0 || base.WallSec < bestWall {
					bestWall, bestWallAt = base.WallSec, entryLabel(h)
				}
				if base.AllocsPerA > 0 && (bestAllocs == 0 || base.AllocsPerA < bestAllocs) {
					bestAllocs, bestAllocsAt = base.AllocsPerA, entryLabel(h)
				}
			}
		}
		if wallSkipped > 0 {
			notes = append(notes, fmt.Sprintf("%s: %d historical wall point(s) skipped (different NumCPU)", cur.Name, wallSkipped))
		}
		if bestWall > 0 {
			if slow := cur.WallSec/bestWall - 1; slow > gateWallTolerance {
				failures = append(failures, fmt.Sprintf("%s: wall %.3fs is %.0f%% over the best historical %.3fs (%s)",
					cur.Name, cur.WallSec, slow*100, bestWall, bestWallAt))
				wallSuspects = append(wallSuspects, cur.Name)
			}
		}
		if bestAllocs > 0 && cur.AllocsPerA > bestAllocs+1e-3 {
			failures = append(failures, fmt.Sprintf("%s: %.4f allocs/op, best historical %.4f (%s)",
				cur.Name, cur.AllocsPerA, bestAllocs, bestAllocsAt))
		}
	}
	return failures, wallSuspects, notes
}

// entryLabel names a history entry in diagnostics: its commit when
// recorded, its timestamp otherwise.
func entryLabel(h Report) string {
	if h.GitSHA != "" {
		return h.GitSHA
	}
	if h.Generated != "" {
		return h.Generated
	}
	return "unlabeled entry"
}
