//go:build !linux && !darwin

package main

// peakRSSKB is unavailable on this platform.
func peakRSSKB() int64 { return 0 }
