//go:build !linux && !darwin

package main

// peakRSSKB is unavailable on this platform. Zero means "unknown":
// the report omits the field (and the summary line the number) rather
// than publishing a misleading 0 kB peak.
func peakRSSKB() int64 { return 0 }
