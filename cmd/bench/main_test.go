package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(numCPU int, cells ...CellResult) Report {
	return Report{GoVersion: "go-test", NumCPU: numCPU, Cells: cells}
}

func cell4(name string, wall, allocs float64) CellResult {
	return CellResult{Name: name, Ops: 1000, WallSec: wall, NsPerOp: wall * 1e9 / 1000, AllocsPerA: allocs}
}

// TestGateSkipsShardWallOnNumCPUMismatch is the regression test for
// the 1-CPU-runner gate bug: a shard cell's wall scales with host
// cores, so comparing it against a baseline committed on a different
// NumCPU must be skipped (with a note), not failed. Reverting the
// guard in runGate makes this fail.
func TestGateSkipsShardWallOnNumCPUMismatch(t *testing.T) {
	base := []CellResult{
		cell4("beff_t3e_16", 1.0, 5),
		cell4("beff_t3e_16_shards4", 1.0, 5),
	}
	// A 1-CPU host runs the sharded cell 3x slower; the sequential
	// cell is unchanged.
	rep := mkReport(1,
		cell4("beff_t3e_16", 1.0, 5),
		cell4("beff_t3e_16_shards4", 3.0, 5),
	)
	failures, suspects, notes := runGate(&rep, base, 8)
	if len(failures) != 0 {
		t.Errorf("shard wall on mismatched NumCPU should not fail the gate: %v", failures)
	}
	if len(suspects) != 0 {
		t.Errorf("no re-measure suspects expected: %v", suspects)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "shards4") || !strings.Contains(notes[0], "skipped") {
		t.Errorf("expected one skip annotation for the shard cell: %v", notes)
	}

	// Allocs growth on the shard cell still fails even with the CPU
	// mismatch — allocation counts are parallelism-independent.
	rep = mkReport(1,
		cell4("beff_t3e_16", 1.0, 5),
		cell4("beff_t3e_16_shards4", 3.0, 7),
	)
	failures, _, _ = runGate(&rep, base, 8)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("allocs growth must stay gated across NumCPU: %v", failures)
	}

	// Same NumCPU: the shard wall comparison is live again.
	rep = mkReport(8,
		cell4("beff_t3e_16", 1.0, 5),
		cell4("beff_t3e_16_shards4", 3.0, 5),
	)
	failures, suspects, notes = runGate(&rep, base, 8)
	if len(failures) != 1 || len(suspects) != 1 {
		t.Errorf("matching NumCPU should gate the shard wall: failures=%v suspects=%v", failures, suspects)
	}
	if len(notes) != 0 {
		t.Errorf("no notes expected on matching NumCPU: %v", notes)
	}
}

func TestGateWallAndAllocs(t *testing.T) {
	base := []CellResult{cell4("beff_t3e_16", 1.0, 5)}
	// Within tolerance: pass.
	rep := mkReport(4, cell4("beff_t3e_16", 1.05, 5))
	if f, s, _ := runGate(&rep, base, 4); len(f) != 0 || len(s) != 0 {
		t.Errorf("5%% drift should pass: %v", f)
	}
	// Beyond tolerance: fail and suspect.
	rep = mkReport(4, cell4("beff_t3e_16", 1.2, 5))
	f, s, _ := runGate(&rep, base, 4)
	if len(f) != 1 || len(s) != 1 {
		t.Errorf("20%% drift should fail with a wall suspect: %v / %v", f, s)
	}
	// A speedup populates the Speedups table.
	rep = mkReport(4, cell4("beff_t3e_16", 0.5, 5))
	runGate(&rep, base, 4)
	if row, ok := rep.Speedups["beff_t3e_16"]; !ok || row.Wall < 1.9 || row.Wall > 2.1 {
		t.Errorf("speedup row = %+v", rep.Speedups)
	}
}

// TestTrendGateUsesBestHistoricalPoint: the trend gate compares each
// cell against the best value anywhere in the history, so a slow
// decay that stays within tolerance of the latest entry still fails
// against an older, better one.
func TestTrendGateUsesBestHistoricalPoint(t *testing.T) {
	hist := []Report{
		func() Report {
			r := mkReport(4, cell4("beff_t3e_16", 1.0, 5))
			r.GitSHA = "aaaa111"
			return r
		}(),
		mkReport(4, cell4("beff_t3e_16", 1.08, 5)), // 8% slower, tolerated vs previous
	}
	// 8% over the latest entry but 17% over the best point: must fail,
	// and the message must name the best entry's commit.
	rep := mkReport(4, cell4("beff_t3e_16", 1.17, 5))
	failures, suspects, _ := runTrend(&rep, hist)
	if len(failures) != 1 || len(suspects) != 1 {
		t.Fatalf("decay past the best point should fail: %v", failures)
	}
	if !strings.Contains(failures[0], "aaaa111") {
		t.Errorf("failure should name the best entry: %v", failures[0])
	}

	// Matching the best point passes.
	rep = mkReport(4, cell4("beff_t3e_16", 1.02, 5))
	if f, _, _ := runTrend(&rep, hist); len(f) != 0 {
		t.Errorf("2%% over best should pass: %v", f)
	}

	// Allocs are gated against the historical best too.
	rep = mkReport(4, cell4("beff_t3e_16", 1.0, 6))
	if f, _, _ := runTrend(&rep, hist); len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
		t.Errorf("allocs decay should fail: %v", f)
	}
}

// TestTrendShardNumCPUGuard: historical shard-cell walls recorded on
// a different core count stay out of a shard cell's best-wall pool.
func TestTrendShardNumCPUGuard(t *testing.T) {
	hist := []Report{
		mkReport(8, cell4("beff_t3e_16_shards4", 0.3, 5)), // many-core wall, unreachable on 1 CPU
		mkReport(1, cell4("beff_t3e_16_shards4", 1.0, 5)),
	}
	rep := mkReport(1, cell4("beff_t3e_16_shards4", 1.05, 5))
	failures, _, notes := runTrend(&rep, hist)
	if len(failures) != 0 {
		t.Errorf("1-CPU run should only compare against 1-CPU history: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped") {
		t.Errorf("expected a skip note: %v", notes)
	}
}

func TestLoadHistoryBothFormats(t *testing.T) {
	dir := t.TempDir()

	single := filepath.Join(dir, "single.json")
	rep := mkReport(4, cell4("beff_t3e_16", 1.0, 5))
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(single, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := loadHistory(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Cells[0].Name != "beff_t3e_16" {
		t.Errorf("single report should load as a one-entry history: %+v", entries)
	}

	multi := filepath.Join(dir, "history.json")
	data, err = json.Marshal(History{Entries: []Report{rep, rep}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(multi, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err = loadHistory(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("history should load both entries, got %d", len(entries))
	}

	for name, content := range map[string]string{
		"garbage.json": "{not json",
		"empty.json":   "{}",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadHistory(p); err == nil {
			t.Errorf("%s should fail to load", name)
		}
	}
}

func TestIsShardCell(t *testing.T) {
	if !isShardCell("beff_t3e_16_shards4") || !isShardCell("beff_t3e_64_shards8") {
		t.Error("shard cells not recognised")
	}
	if isShardCell("beff_t3e_16") || isShardCell("beffio_t3e_8") {
		t.Error("sequential cells misclassified")
	}
}
