//go:build linux || darwin

package main

import (
	"runtime"
	"syscall"
)

// peakRSSKB reports the process's peak resident set size in kilobytes,
// or 0 if the platform cannot say.
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports Maxrss in kB, Darwin in bytes.
	if runtime.GOOS == "darwin" {
		return ru.Maxrss / 1024
	}
	return ru.Maxrss
}
