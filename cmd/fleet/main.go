// Command fleet characterises every machine in one run: it sweeps all
// registered machine profiles (or a -machines subset) across a
// -procs partition ladder, optionally with perturbed repetitions per
// point, and renders the fleet-wide report — the paper's Table 1 for
// all machines, the Fig.-1 balance-factor chart, and a survey-style
// taxonomy table (fabric family, b_eff, b_eff/R_max, L_max,
// perturbation sensitivity) — in text, CSV and JSON.
//
// Every (machine, procs, repetition) point is an ordinary sweep cell:
// the fleet fans out over -j workers, shards each simulation over
// -shards, and shares the result cache with every other command, so a
// fleet run after a tables or robustness session is mostly cache
// hits. Output is deterministic — byte-identical at every -j and
// -shards — which makes the JSON artifact diffable: -diff compares a
// previous fleet JSON against this run and fails when any machine's
// b_eff or balance factor moved beyond -diff-tolerance.
//
// Usage:
//
//	fleet                                    # all machines, ladder 4,8
//	fleet -procs 4,16,64 -j 8
//	fleet -machines t3e,sp,sx5 -reps 3 -perturb stormy
//	fleet -json fleet.json -csv fleet.csv
//	fleet -json new.json -diff old.json      # drift gate, exit 1 on moves
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/runner"
)

func main() {
	c := cli.New("fleet")
	c.FleetFlags(nil)
	c.SeedFlag(nil, "base seed; perturbed repetition r runs under RepSeed(seed, r)")
	c.PerturbFlag(nil, "")
	c.ShardsFlag(nil)
	c.ProfileFlags(nil)
	c.ObsFlags(nil)
	var (
		reps      = flag.Int("reps", 0, "perturbed repetitions per point (0 disables perturbation)")
		maxLoop   = flag.Int("maxloop", 2, "b_eff: max looplength (deterministic simulation makes 2 exact)")
		innerReps = flag.Int("inner-reps", 1, "b_eff: in-run repetitions per measurement")
		lmaxOver  = flag.Int64("lmax", 0, "override L_max in bytes for every machine (0 = each profile's memory rule)")
		analysis  = flag.Bool("analysis", false, "include the heavyweight analysis patterns (worst cycle, bisections)")
		csvPath   = flag.String("csv", "", "write the per-point fleet table as CSV to this file")
		jsonPath  = flag.String("json", "", "write the fleet report as JSON to this file")
		noText    = flag.Bool("no-text", false, "suppress the text report on stdout")
		generated = flag.String("generated", "", "timestamp to stamp into the JSON report (empty keeps it deterministic)")
		diffPath  = flag.String("diff", "", "compare against this previous fleet JSON and exit 1 on drift")
		diffTol   = flag.Float64("diff-tolerance", 0.01, "relative b_eff / balance-factor move that counts as drift")
	)
	rf := &runner.Flags{}
	rf.Register(flag.CommandLine)
	flag.Parse()

	c.Validate()
	switch {
	case *reps < 0:
		c.UsageErr("-reps must be >= 0, got %d", *reps)
	case *maxLoop < 1:
		c.UsageErr("-maxloop must be >= 1, got %d", *maxLoop)
	case *innerReps < 1:
		c.UsageErr("-inner-reps must be >= 1, got %d", *innerReps)
	case *lmaxOver < 0:
		c.UsageErr("-lmax must be >= 0, got %d", *lmaxOver)
	case *diffTol <= 0:
		c.UsageErr("-diff-tolerance must be positive, got %v", *diffTol)
	}
	ladder, err := c.ParseProcsLadder()
	if err != nil {
		c.UsageErr("%v", err)
	}
	for _, n := range ladder {
		if n < 2 {
			c.UsageErr("-procs ladder entry %d below the 2-process minimum", n)
		}
	}

	stopProf := c.StartProfiling()
	defer stopProf()

	pert, err := c.LoadPerturb()
	c.Fatal(err)

	o := c.StartObs()
	spec := &runner.FleetSpec{
		Machines:      c.ParseMachines(),
		Procs:         ladder,
		Seed:          c.Seed,
		Reps:          *reps,
		Perturb:       pert,
		PerturbName:   c.Perturb,
		MaxLooplength: *maxLoop,
		InnerReps:     *innerReps,
		SkipAnalysis:  !*analysis,
		LmaxOverride:  *lmaxOver,
		Shards:        c.Shards,
		Obs:           o.Reg,
	}
	fr, err := runner.RunFleet(spec, o.SweepOptions(rf.Options("fleet")))
	o.Close()
	c.Fatal(err)
	fr.Generated = *generated

	if !*noText {
		fmt.Print(report.FleetText(fr))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		c.Fatal(err)
		c.Fatal(report.FleetCSV(f, fr))
		c.Fatal(f.Close())
		fmt.Fprintf(os.Stderr, "fleet: wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		data, err := report.FleetJSON(fr)
		c.Fatal(err)
		c.Fatal(os.WriteFile(*jsonPath, data, 0o644))
		fmt.Fprintf(os.Stderr, "fleet: wrote %s\n", *jsonPath)
	}

	if *diffPath != "" {
		data, err := os.ReadFile(*diffPath)
		c.Fatal(err)
		old, err := report.ParseFleetJSON(data)
		c.Fatal(err)
		msgs := report.FleetDiff(old, fr, *diffTol)
		if len(msgs) == 0 {
			fmt.Printf("fleet: no drift vs %s (tolerance %.2f%%)\n", *diffPath, 100**diffTol)
			return
		}
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "fleet: drift: %s\n", m)
		}
		c.Fatal(fmt.Errorf("%d machine(s) drifted vs %s", len(msgs), *diffPath))
	}
}
