package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke tests of the built binary: exit codes, artifact writing, and
// the -diff drift gate — the surface CI and scripts depend on.

var bin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fleet-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "fleet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

// miniFleetArgs keeps smoke runs to milliseconds: two small machines,
// a tiny L_max, no cache sharing with the host.
func miniFleetArgs(t *testing.T, extra ...string) []string {
	t.Helper()
	args := []string{
		"-machines", "t3e,sx5", "-procs", "4", "-lmax", "65536",
		"-cache", filepath.Join(t.TempDir(), "cache"),
	}
	return append(args, extra...)
}

func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-procs", "0"},
		{"-procs", "4;8"},
		{"-maxloop", "0"},
		{"-reps", "-1"},
		{"-seed", "0"},
		{"-diff-tolerance", "0"},
	} {
		out, code := run(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (usage)", args, code)
		}
		if !strings.Contains(out, "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestUnknownMachineFails(t *testing.T) {
	out, code := run(t, "-machines", "no-such-machine")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "no-such-machine") {
		t.Fatalf("error does not name the machine:\n%s", out)
	}
}

func TestMiniFleetRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "fleet.csv")
	jsonPath := filepath.Join(dir, "fleet.json")
	out, code := run(t, miniFleetArgs(t, "-csv", csvPath, "-json", jsonPath)...)
	if code != 0 {
		t.Fatalf("fleet run failed (%d):\n%s", code, out)
	}
	for _, want := range []string{"Fleet characterization: 2 machines", "Taxonomy", "3-D torus", "NEC SX-5/8B"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csvData), "\n"); lines != 3 { // header + 2 machines x 1 point
		t.Errorf("csv lines = %d, want 3:\n%s", lines, csvData)
	}
	jsData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Machines []struct {
			Key  string  `json:"key"`
			Beff float64 `json:"beff"`
		} `json:"machines"`
	}
	if err := json.Unmarshal(jsData, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Machines) != 2 || doc.Machines[0].Beff <= 0 {
		t.Errorf("json malformed: %+v", doc)
	}
}

func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if out, code := run(t, miniFleetArgs(t, "-json", basePath, "-no-text")...); code != 0 {
		t.Fatalf("baseline run failed (%d):\n%s", code, out)
	}

	// Same spec: no drift, exit 0.
	out, code := run(t, miniFleetArgs(t, "-diff", basePath, "-no-text")...)
	if code != 0 {
		t.Fatalf("identical fleet flagged drift (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "no drift") {
		t.Errorf("missing no-drift confirmation:\n%s", out)
	}

	// A different L_max moves every b_eff: the gate must fail. (The
	// flag package takes the last occurrence, so this overrides the
	// mini-fleet's -lmax.)
	out, code = run(t, miniFleetArgs(t, "-lmax", "1048576", "-diff", basePath, "-no-text")...)
	if code != 1 {
		t.Fatalf("drifted fleet passed the gate (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "drift") {
		t.Errorf("missing drift diagnostics:\n%s", out)
	}
}

func TestDeterministicJSONAcrossJandShards(t *testing.T) {
	var want []byte
	for _, extra := range [][]string{
		{"-j", "1"},
		{"-j", "8"},
		{"-j", "8", "-shards", "4"},
	} {
		jsonPath := filepath.Join(t.TempDir(), "fleet.json")
		args := miniFleetArgs(t, append(extra, "-json", jsonPath, "-no-text")...)
		if out, code := run(t, args...); code != 0 {
			t.Fatalf("%v failed (%d):\n%s", extra, code, out)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
			continue
		}
		if string(data) != string(want) {
			t.Errorf("%v: JSON differs from the -j1 run", extra)
		}
	}
}
