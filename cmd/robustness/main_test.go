package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke tests for the built binary: exit codes, usage text, and one
// fast checked run (uncached, so nothing is written outside the test
// environment).

var bin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "robustness-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "robustness")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

func TestUnknownFlagFailsWithUsage(t *testing.T) {
	out, code := run(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(out, "Usage") {
		t.Fatalf("no usage text:\n%s", out)
	}
}

func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-procs", "0"},
		{"-reps", "0"},
		{"-reps", "-3"},
		{"-seed", "0"},
		{"-seed", "-1"},
		{"-maxloop", "0"},
		{"-inner-reps", "0"},
		{"-T", "0"},
	} {
		out, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v accepted", args)
		}
		if !strings.Contains(out, "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestUnknownPerturbProfileFails(t *testing.T) {
	out, code := run(t, "-perturb", "no-such-profile", "-no-cache")
	if code == 0 {
		t.Fatal("unknown perturbation profile accepted")
	}
	if !strings.Contains(out, "no-such-profile") {
		t.Fatalf("error does not name the profile:\n%s", out)
	}
}

func TestListPresetsSucceeds(t *testing.T) {
	out, code := run(t, "-list-presets")
	if code != 0 {
		t.Fatalf("-list-presets failed (%d):\n%s", code, out)
	}
	for _, name := range []string{"stormy", "os-noise", "straggler"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list-presets missing %s:\n%s", name, out)
		}
	}
}

func TestCheckedRunSucceeds(t *testing.T) {
	out, code := run(t, "-machine", "cluster", "-procs", "2", "-reps", "2",
		"-maxloop", "1", "-inner-reps", "1", "-check", "-no-cache")
	if code != 0 {
		t.Fatalf("checked run failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "check: all result invariants held") {
		t.Fatalf("no check confirmation:\n%s", out)
	}
	if !strings.Contains(out, "max over repetitions") {
		t.Fatalf("no summary line:\n%s", out)
	}
}
