// Command robustness characterises a benchmark's run-to-run
// variability under fault injection: it runs b_eff (or b_eff_io) N
// times on a simulated machine, each repetition under the same
// perturbation profile but an independently derived seed, and reports
// the distribution — min, median, max, mean, coefficient of variation
// — together with the paper-prescribed max-over-repetitions value and
// the unperturbed baseline.
//
// Repetitions are independent simulation cells: they fan out over -j
// workers and memoise in the shared result cache (the perturbation
// profile and per-repetition seed are part of each cell's cache
// fingerprint). Output is byte-identical across invocations and across
// -j values.
//
// Usage:
//
//	robustness -machine t3e -procs 16 -reps 8 -perturb stormy
//	robustness -machine sp -procs 8 -reps 5 -perturb os-noise -seed 7
//	robustness -machine sp -procs 8 -io -perturb io-hiccup -T 30
//	robustness -list-presets
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/prof"
	"github.com/hpcbench/beff/internal/runner"
)

func main() {
	var (
		machineKey  = flag.String("machine", "cluster", "machine profile key")
		procs       = flag.Int("procs", 8, "number of MPI / I/O processes")
		reps        = flag.Int("reps", 5, "independent perturbed repetitions")
		perturbArg  = flag.String("perturb", "stormy", "perturbation profile: preset name or JSON file")
		seed        = flag.Int64("seed", 1, "base seed; repetition r runs under RepSeed(seed, r)")
		maxLoop     = flag.Int("maxloop", 8, "b_eff: max looplength")
		innerReps   = flag.Int("inner-reps", 3, "b_eff: in-run repetitions per measurement (the paper's 3)")
		ioBench     = flag.Bool("io", false, "measure b_eff_io instead of b_eff")
		tSecs       = flag.Float64("T", 60, "b_eff_io: scheduled time per partition in virtual seconds")
		baseline    = flag.Bool("baseline", true, "also run the unperturbed cell for comparison")
		csvPath     = flag.String("csv", "", "write per-repetition values as CSV to this file")
		checkRun    = flag.Bool("check", false, "verify result invariants (reductions, statistics) and fail on violation")
		listPresets = flag.Bool("list-presets", false, "list built-in perturbation presets and exit")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	rf := &runner.Flags{}
	rf.Register(flag.CommandLine)
	flag.Parse()

	if *listPresets {
		for _, name := range perturb.Presets() {
			p, _ := perturb.Preset(name)
			fmt.Printf("%-12s %d link, %d noise, %d straggler, %d I/O fault(s)\n",
				name, len(p.Links), len(p.Noise), len(p.Stragglers), len(p.IO))
		}
		return
	}
	switch {
	case *procs < 1:
		usageErr("-procs must be >= 1, got %d", *procs)
	case *reps < 1:
		usageErr("-reps must be >= 1, got %d", *reps)
	case *seed < 1:
		usageErr("-seed must be >= 1, got %d", *seed)
	case *maxLoop < 1:
		usageErr("-maxloop must be >= 1, got %d", *maxLoop)
	case *innerReps < 1:
		usageErr("-inner-reps must be >= 1, got %d", *innerReps)
	case *tSecs <= 0:
		usageErr("-T must be positive, got %v", *tSecs)
	}

	defer func() { fatal(prof.WriteHeap(*memProfile)) }()
	stopCPU, err := prof.StartCPU(*cpuProfile)
	fatal(err)
	defer stopCPU()

	pert, err := perturb.Load(*perturbArg)
	fatal(err)
	p, err := machine.Lookup(*machineKey)
	fatal(err)

	var bench string
	var values []float64
	var base float64
	var chk *check.Checker
	if *checkRun {
		chk = check.New()
	}
	if *ioBench {
		bench = "b_eff_io"
		opt := beffio.Options{T: des.DurationOf(*tSecs), MPart: p.MPart()}
		cells := make([]runner.Cell[*beffio.Result], 0, *reps+1)
		for r := 0; r < *reps; r++ {
			cells = append(cells, runner.RobustBeffIOCell(*machineKey, *procs, opt, pert, *seed, r))
		}
		if *baseline {
			cells = append(cells, runner.RobustBeffIOCell(*machineKey, *procs, opt, nil, 0, 0))
		}
		results := runner.Sweep(cells, rf.Options("robustness"))
		fatal(runner.Err(results))
		for _, r := range results {
			if chk != nil {
				chk.VerifyBeffIO(r.Value)
			}
		}
		for r := 0; r < *reps; r++ {
			values = append(values, results[r].Value.BeffIO)
		}
		if *baseline {
			base = results[*reps].Value.BeffIO
		}
	} else {
		bench = "b_eff"
		opt := core.Options{MemoryPerProc: p.MemoryPerProc, MaxLooplength: *maxLoop, Reps: *innerReps}
		cells := make([]runner.Cell[*core.Result], 0, *reps+1)
		for r := 0; r < *reps; r++ {
			cells = append(cells, runner.RobustBeffCell(*machineKey, *procs, opt, pert, *seed, r))
		}
		if *baseline {
			cells = append(cells, runner.RobustBeffCell(*machineKey, *procs, opt, nil, 0, 0))
		}
		results := runner.Sweep(cells, rf.Options("robustness"))
		fatal(runner.Err(results))
		for _, r := range results {
			if chk != nil {
				chk.VerifyBeff(r.Value)
			}
		}
		for r := 0; r < *reps; r++ {
			values = append(values, results[r].Value.Beff)
		}
		if *baseline {
			base = results[*reps].Value.Beff
		}
	}

	rob := runner.SummarizeReps(values)
	if chk != nil {
		chk.VerifyRobustness(rob)
		fatal(chk.Finish())
		fmt.Println("check: all result invariants held")
	}
	fmt.Printf("robustness of %s on %s @ %d procs — profile %q, base seed %d, %d repetitions\n",
		bench, p.Name, *procs, pert.Name, *seed, *reps)
	fmt.Printf("%4s  %20s  %12s\n", "rep", "seed", bench+" MB/s")
	for r, v := range values {
		fmt.Printf("%4d  %20d  %12.1f\n", r, perturb.RepSeed(*seed, r), v/1e6)
	}
	s := rob.Summary
	fmt.Printf("\nmin / median / max = %.1f / %.1f / %.1f MB/s   mean %.1f   CV %.2f%%\n",
		s.Min/1e6, s.Median/1e6, s.Max/1e6, s.Mean/1e6, 100*s.CV)
	fmt.Printf("reported %s (max over repetitions) = %.1f MB/s", bench, rob.MaxOverReps/1e6)
	if *baseline && base > 0 {
		fmt.Printf("   (%.1f%% of unperturbed %.1f MB/s)", 100*rob.MaxOverReps/base, base/1e6)
	}
	fmt.Println()

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatal(err)
		w := csv.NewWriter(f)
		fatal(w.Write([]string{"machine", "bench", "profile", "rep", "seed", "value_bytes_per_s"}))
		for r, v := range values {
			fatal(w.Write([]string{*machineKey, bench, pert.Name, strconv.Itoa(r),
				strconv.FormatInt(perturb.RepSeed(*seed, r), 10),
				strconv.FormatFloat(v, 'g', -1, 64)}))
		}
		w.Flush()
		fatal(w.Error())
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustness:", err)
		os.Exit(1)
	}
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "robustness: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
