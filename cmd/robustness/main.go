// Command robustness characterises a benchmark's run-to-run
// variability under fault injection: it runs b_eff (or b_eff_io) N
// times on a simulated machine, each repetition under the same
// perturbation profile but an independently derived seed, and reports
// the distribution — min, median, max, mean, coefficient of variation
// — together with the paper-prescribed max-over-repetitions value and
// the unperturbed baseline.
//
// Repetitions are independent simulation cells: they fan out over -j
// workers and memoise in the shared result cache (the perturbation
// profile and per-repetition seed are part of each cell's cache
// fingerprint). Output is byte-identical across invocations and across
// -j values.
//
// Usage:
//
//	robustness -machine t3e -procs 16 -reps 8 -perturb stormy
//	robustness -machine sp -procs 8 -reps 5 -perturb os-noise -seed 7
//	robustness -machine sp -procs 8 -io -perturb io-hiccup -T 30
//	robustness -machine t3e -procs 16 -reps 32 -progress -debug-addr localhost:6060
//	robustness -list-presets
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/runner"
)

func main() {
	c := cli.New("robustness")
	c.MachineFlags(nil)
	c.SeedFlag(nil, "base seed; repetition r runs under RepSeed(seed, r)")
	c.RepsFlag(nil, 5, "independent perturbed repetitions")
	c.PerturbFlag(nil, "stormy")
	c.ShardsFlag(nil)
	c.CheckFlag(nil, true)
	c.ProfileFlags(nil)
	c.ObsFlags(nil)
	var (
		maxLoop     = flag.Int("maxloop", 8, "b_eff: max looplength")
		innerReps   = flag.Int("inner-reps", 3, "b_eff: in-run repetitions per measurement (the paper's 3)")
		ioBench     = flag.Bool("io", false, "measure b_eff_io instead of b_eff")
		tSecs       = flag.Float64("T", 60, "b_eff_io: scheduled time per partition in virtual seconds")
		baseline    = flag.Bool("baseline", true, "also run the unperturbed cell for comparison")
		csvPath     = flag.String("csv", "", "write per-repetition values as CSV to this file")
		listPresets = flag.Bool("list-presets", false, "list built-in perturbation presets and exit")
	)
	rf := &runner.Flags{}
	rf.Register(flag.CommandLine)
	flag.Parse()

	if *listPresets {
		for _, name := range perturb.Presets() {
			p, _ := perturb.Preset(name)
			fmt.Printf("%-12s %d link, %d noise, %d straggler, %d I/O fault(s)\n",
				name, len(p.Links), len(p.Noise), len(p.Stragglers), len(p.IO))
		}
		return
	}
	c.Validate()
	switch {
	case *maxLoop < 1:
		c.UsageErr("-maxloop must be >= 1, got %d", *maxLoop)
	case *innerReps < 1:
		c.UsageErr("-inner-reps must be >= 1, got %d", *innerReps)
	case *tSecs <= 0:
		c.UsageErr("-T must be positive, got %v", *tSecs)
	}

	stopProf := c.StartProfiling()
	defer stopProf()

	pert, err := perturb.Load(c.Perturb)
	c.Fatal(err)
	p, err := c.LoadMachine()
	c.Fatal(err)

	// The harness watches the sweep from the outside: runner cell
	// counts, cache hits and worker occupancy (the cells build their
	// worlds inside the cache boundary, so per-message instruments stay
	// off and cached and uncached runs stay byte-identical).
	o := c.StartObs()
	sweepOpt := o.SweepOptions(rf.Options("robustness"))

	var bench string
	var values []float64
	var base float64
	var chk *check.Checker
	if c.Check {
		chk = check.New()
	}
	if *ioBench {
		bench = "b_eff_io"
		opt := beffio.Options{T: des.DurationOf(*tSecs), MPart: p.MPart()}
		cells := make([]runner.Cell[*beffio.Result], 0, c.Reps+1)
		for r := 0; r < c.Reps; r++ {
			cells = append(cells, runner.RobustBeffIOCell(c.Machine, c.Procs, opt, pert, c.Seed, r))
		}
		if *baseline {
			cells = append(cells, runner.RobustBeffIOCell(c.Machine, c.Procs, opt, nil, 0, 0))
		}
		results := runner.Sweep(cells, sweepOpt)
		o.Close()
		c.Fatal(runner.Err(results))
		for _, r := range results {
			if chk != nil {
				chk.VerifyBeffIO(r.Value)
			}
		}
		for r := 0; r < c.Reps; r++ {
			values = append(values, results[r].Value.BeffIO)
		}
		if *baseline {
			base = results[c.Reps].Value.BeffIO
		}
	} else {
		bench = "b_eff"
		opt := core.Options{MemoryPerProc: p.MemoryPerProc, MaxLooplength: *maxLoop, Reps: *innerReps}
		// -shards threads through to the cells; perturbed repetitions
		// re-simulate rather than speculate (see RobustBeffCellShards),
		// so values are byte-identical at every shard count.
		cells := make([]runner.Cell[*core.Result], 0, c.Reps+1)
		for r := 0; r < c.Reps; r++ {
			cells = append(cells, runner.RobustBeffCellShards(c.Machine, c.Procs, opt, pert, c.Seed, r, c.Shards, o.Reg))
		}
		if *baseline {
			cells = append(cells, runner.RobustBeffCellShards(c.Machine, c.Procs, opt, nil, 0, 0, c.Shards, o.Reg))
		}
		results := runner.Sweep(cells, sweepOpt)
		o.Close()
		c.Fatal(runner.Err(results))
		for _, r := range results {
			if chk != nil {
				chk.VerifyBeff(r.Value)
			}
		}
		for r := 0; r < c.Reps; r++ {
			values = append(values, results[r].Value.Beff)
		}
		if *baseline {
			base = results[c.Reps].Value.Beff
		}
	}

	rob := runner.SummarizeReps(values)
	if chk != nil {
		chk.VerifyRobustness(rob)
		c.Fatal(chk.Finish())
		fmt.Println("check: all result invariants held")
	}
	fmt.Printf("robustness of %s on %s @ %d procs — profile %q, base seed %d, %d repetitions\n",
		bench, p.Name, c.Procs, pert.Name, c.Seed, c.Reps)
	fmt.Printf("%4s  %20s  %12s\n", "rep", "seed", bench+" MB/s")
	for r, v := range values {
		fmt.Printf("%4d  %20d  %12.1f\n", r, perturb.RepSeed(c.Seed, r), v/1e6)
	}
	s := rob.Summary
	fmt.Printf("\nmin / median / max = %.1f / %.1f / %.1f MB/s   mean %.1f   CV %.2f%%\n",
		s.Min/1e6, s.Median/1e6, s.Max/1e6, s.Mean/1e6, 100*s.CV)
	fmt.Printf("reported %s (max over repetitions) = %.1f MB/s", bench, rob.MaxOverReps/1e6)
	if *baseline && base > 0 {
		fmt.Printf("   (%.1f%% of unperturbed %.1f MB/s)", 100*rob.MaxOverReps/base, base/1e6)
	}
	fmt.Println()

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		c.Fatal(err)
		w := csv.NewWriter(f)
		c.Fatal(w.Write([]string{"machine", "bench", "profile", "rep", "seed", "value_bytes_per_s"}))
		for r, v := range values {
			c.Fatal(w.Write([]string{c.Machine, bench, pert.Name, strconv.Itoa(r),
				strconv.FormatInt(perturb.RepSeed(c.Seed, r), 10),
				strconv.FormatFloat(v, 'g', -1, 64)}))
		}
		w.Flush()
		c.Fatal(w.Error())
		c.Fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
