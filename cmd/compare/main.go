// Command compare runs b_eff on several machine profiles at the same
// partition size and lines the protocols up side by side — the spirit
// of the SKaMPI "comparison page" the paper's §6 wants to feed. It
// answers the procurement question the paper opens with: which machine
// is actually better balanced, not which has the shinier peak number.
//
// Each machine is an independent simulation cell: they run over -j
// workers and memoise under -cache. If any cell fails the command
// exits non-zero instead of printing a partial table.
//
// Usage:
//
//	compare -machines t3e,sr8000-seq,sr8000-rr -procs 24
//	compare -machines sx5,sx4 -procs 4 -j 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/runner"
)

func main() {
	var (
		machines = flag.String("machines", "t3e,sr8000-seq,sr8000-rr", "comma-separated machine profile keys")
		procs    = flag.Int("procs", 16, "partition size used on every machine")
		maxLoop  = flag.Int("maxloop", 4, "max looplength")
		rf       runner.Flags
	)
	rf.Register(flag.CommandLine)
	flag.Parse()

	opt := core.Options{MaxLooplength: *maxLoop, Reps: 1, SkipAnalysis: true}

	var (
		profiles []*machine.Profile
		cells    []runner.Cell[*core.Result]
	)
	for _, key := range strings.Split(*machines, ",") {
		key = strings.TrimSpace(key)
		p, err := machine.Lookup(key)
		fatal(err)
		n := *procs
		if n > p.MaxProcs {
			n = p.MaxProcs
			fmt.Fprintf(os.Stderr, "compare: %s capped at %d processes\n", key, n)
		}
		profiles = append(profiles, p)
		cells = append(cells, runner.BeffCell(key, n, opt))
	}
	results := runner.Sweep(cells, rf.Options("compare"))
	if err := runner.Err(results); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	type row struct {
		p   *machine.Profile
		res *core.Result
	}
	var rows []row
	for i, r := range results {
		rows = append(rows, row{profiles[i], r.Value})
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "metric\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t", r.p.Key)
	}
	fmt.Fprintln(tw)
	metric := func(name string, f func(row) float64, format string) {
		fmt.Fprintf(tw, "%s\t", name)
		for _, r := range rows {
			fmt.Fprintf(tw, format+"\t", f(r))
		}
		fmt.Fprintln(tw)
	}
	metric("procs", func(r row) float64 { return float64(r.res.Procs) }, "%.0f")
	metric("b_eff MB/s", func(r row) float64 { return r.res.Beff / 1e6 }, "%.0f")
	metric("b_eff/proc MB/s", func(r row) float64 { return r.res.BeffPerProc() / 1e6 }, "%.1f")
	metric("@Lmax/proc MB/s", func(r row) float64 { return r.res.AtLmaxPerProc() / 1e6 }, "%.1f")
	metric("rings@Lmax/proc MB/s", func(r row) float64 { return r.res.RingAtLmaxPerProc() / 1e6 }, "%.1f")
	metric("ping-pong MB/s", func(r row) float64 { return r.res.PingPong / 1e6 }, "%.0f")
	metric("balance bytes/flop", func(r row) float64 {
		return r.res.Beff / (r.p.RmaxGF(r.res.Procs) * 1e9)
	}, "%.4f")
	metric("small msgs MB/s", func(r row) float64 { return r.res.Categories().Ring[core.SmallMessages] / 1e6 }, "%.1f")
	metric("large msgs MB/s", func(r row) float64 { return r.res.Categories().Ring[core.LargeMessages] / 1e6 }, "%.0f")
	tw.Flush()

	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s prefers %v\n", r.p.Key, r.res.Categories().PreferredMethod())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}
