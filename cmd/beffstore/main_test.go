package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpcbench/beff/internal/store"
)

// seedFlat writes n legacy flat entries into dir and returns their
// hex keys.
func seedFlat(t *testing.T, dir string, n int) []string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		doc := fmt.Sprintf(`{
 "key": "cell-%d",
 "fingerprint": {"i": %d},
 "value": {"n": %d}
}`, i, i, i*10)
		if err := os.WriteFile(filepath.Join(dir, keys[i]+".json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// beffstore invokes run() and returns (exit code, stdout, stderr).
func beffstore(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMigrateThenRead(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	keys := seedFlat(t, dir, 5)

	code, out, errb := beffstore("-cache", dir, "migrate")
	if code != 0 {
		t.Fatalf("migrate: exit %d\n%s", code, errb)
	}
	if !strings.Contains(out, "migrated 5 flat entries") {
		t.Fatalf("migrate output: %s", out)
	}
	if flats, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(flats) != 0 {
		t.Fatalf("flat files left: %v", flats)
	}

	// Every migrated entry reads back byte-identical via get.
	for i, key := range keys {
		code, out, errb = beffstore("-cache", dir, "get", key)
		if code != 0 {
			t.Fatalf("get %s: exit %d\n%s", key, code, errb)
		}
		var e entryDoc
		if err := json.Unmarshal([]byte(out), &e); err != nil {
			t.Fatalf("get %s: bad JSON: %v\n%s", key, err, out)
		}
		if e.Key != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("get %s: key %q", key, e.Key)
		}
	}

	// ls lists them sorted; verify finds no damage.
	code, out, _ = beffstore("-cache", dir, "ls")
	if code != 0 || len(strings.Fields(out)) != 5 {
		t.Fatalf("ls: exit %d, out %q", code, out)
	}
	code, out, errb = beffstore("-cache", dir, "verify")
	if code != 0 || !strings.Contains(out, "verified 5 entries, ") || !strings.Contains(out, " 0 damaged") {
		t.Fatalf("verify: exit %d, out %q, err %q", code, out, errb)
	}
}

func TestMigrateSkipsDamagedEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	seedFlat(t, dir, 2)
	bad := filepath.Join(dir, strings.Repeat("f", 64)+".json")
	if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := beffstore("-cache", dir, "migrate")
	if code != 0 {
		t.Fatalf("migrate: exit %d\n%s", code, errb)
	}
	if !strings.Contains(out, "migrated 2 flat entries, skipped 1") {
		t.Fatalf("migrate output: %s", out)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("damaged entry removed instead of skipped: %v", err)
	}
}

func TestStatsAndCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := store.Open(dir, store.Options{TargetSegmentSize: 1 << 10, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		for k := 0; k < 4; k++ {
			key := fmt.Sprintf("%064x", k+1)
			doc := fmt.Sprintf(`{"key":"cell-%d","fingerprint":{},"value":{"round":%d}}`, k, round)
			if err := st.Put(key, []byte(doc)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errb := beffstore("-cache", dir, "stats")
	if code != 0 {
		t.Fatalf("stats: exit %d\n%s", code, errb)
	}
	var stats struct {
		Stats    store.Stats         `json:"stats"`
		Segments []store.SegmentStat `json:"segments"`
	}
	if err := json.Unmarshal([]byte(out), &stats); err != nil {
		t.Fatalf("stats output not JSON: %v\n%s", err, out)
	}
	if stats.Stats.LiveEntries != 4 || stats.Stats.DeadBytes == 0 || len(stats.Segments) < 2 {
		t.Fatalf("stats: %+v", stats)
	}

	code, out, errb = beffstore("-cache", dir, "compact")
	if code != 0 {
		t.Fatalf("compact: exit %d\n%s", code, errb)
	}
	if !strings.Contains(out, "reclaimed") || !strings.Contains(out, "4 live entries") {
		t.Fatalf("compact output: %s", out)
	}

	code, out, _ = beffstore("-cache", dir, "verify")
	if code != 0 || !strings.Contains(out, "verified 4 entries") {
		t.Fatalf("verify after compact: exit %d, %s", code, out)
	}
}

func TestReadCommandsWorkWhileLocked(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	seedFlat(t, dir, 1)
	if code, _, errb := beffstore("-cache", dir, "migrate"); code != 0 {
		t.Fatalf("migrate: %s", errb)
	}
	holder, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()

	if code, _, errb := beffstore("-cache", dir, "stats"); code != 0 {
		t.Fatalf("stats under lock: %s", errb)
	}
	if code, _, errb := beffstore("-cache", dir, "ls"); code != 0 {
		t.Fatalf("ls under lock: %s", errb)
	}
	// Maintenance needs the lock and must say who probably holds it.
	code, _, errb := beffstore("-cache", dir, "compact")
	if code != 1 || !strings.Contains(errb, "beffd or a sweep") {
		t.Fatalf("compact under lock: exit %d, %s", code, errb)
	}
}

func TestGetMissingAndUsageErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	seedFlat(t, dir, 0)
	if code, _, _ := beffstore("-cache", dir, "get", strings.Repeat("a", 64)); code != 1 {
		t.Fatalf("get missing: exit %d", code)
	}
	if code, _, _ := beffstore("-cache", dir, "get"); code != 2 {
		t.Fatalf("get without key: exit %d", code)
	}
	if code, _, _ := beffstore("-cache", dir, "frobnicate"); code != 2 {
		t.Fatalf("unknown command: exit %d", code)
	}
	if code, _, _ := beffstore(); code != 2 {
		t.Fatalf("no command: exit %d", code)
	}
}

func TestBenchSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	code, out, errb := beffstore("bench", "-entries", "64", "-value-bytes", "128", "-lookups", "200", "-scans", "2", "-out", outPath)
	if code != 0 {
		t.Fatalf("bench: exit %d\n%s", code, errb)
	}
	var rep benchReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bench output not JSON: %v\n%s", err, out)
	}
	if len(rep.Backends) != 2 || rep.Entries != 64 {
		t.Fatalf("bench report: %+v", rep)
	}
	for _, b := range rep.Backends {
		if b.PointLookup.AvgNs <= 0 || b.FullScan.MedianNs <= 0 {
			t.Fatalf("backend %s has empty latencies: %+v", b.Backend, b)
		}
	}
	// The store packs everything into a handful of segment files.
	if rep.Backends[0].Backend != "store" || rep.Backends[0].Files >= rep.Backends[1].Files {
		t.Fatalf("file counts: %+v", rep.Backends)
	}
	if data, err := os.ReadFile(outPath); err != nil || !json.Valid(data) {
		t.Fatalf("-out file: %v", err)
	}
}
