// Command beffstore inspects and maintains the segment-log result
// store behind the sweep cache (.beffcache/). The read commands open
// the store read-only, so they work while a beff command or beffd
// holds the writer lock; the maintenance commands need the lock and
// say so when a daemon has it.
//
// Usage:
//
//	beffstore [-cache DIR] stats                  store shape + per-segment table
//	beffstore [-cache DIR] ls [-v]                live keys (with -v: cell key, size)
//	beffstore [-cache DIR] get <key>              one raw entry document
//	beffstore [-cache DIR] verify                 replay + checksum + decode every entry
//	beffstore [-cache DIR] compact                merge sealed segments, drop dead records
//	beffstore [-cache DIR] migrate                import legacy flat *.json entries
//	beffstore [-cache DIR] bench [flags]          store-vs-flat latency benchmark
//
// The bench subcommand builds throwaway store and flat caches of
// -entries entries and measures random point lookups and whole-cache
// scans on both, reporting avg/median/p95 latencies as JSON (the
// committed BENCH_store.json is its output).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/hpcbench/beff/internal/runner"
	"github.com/hpcbench/beff/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// entryDoc mirrors the cache's stored entry document (runner's
// unexported entry type): what both backends keep per key.
type entryDoc struct {
	Key         string          `json:"key"`
	Fingerprint json.RawMessage `json:"fingerprint"`
	Value       json.RawMessage `json:"value"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("beffstore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("cache", runner.DefaultCacheDir, "cache directory holding the store")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: beffstore [-cache DIR] <stats|ls|get|verify|compact|migrate|bench> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	fail := func(err error) int {
		if errors.Is(err, store.ErrLocked) {
			fmt.Fprintf(stderr, "beffstore: %v (is beffd or a sweep running? read commands still work)\n", err)
		} else {
			fmt.Fprintf(stderr, "beffstore: %v\n", err)
		}
		return 1
	}

	switch cmd {
	case "stats":
		st, err := store.Open(*dir, store.Options{ReadOnly: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		out := struct {
			Dir      string              `json:"dir"`
			Stats    store.Stats         `json:"stats"`
			Segments []store.SegmentStat `json:"segments"`
			FlatLeft int                 `json:"flat_entries_not_migrated"`
		}{Dir: *dir, Stats: st.Stats(), Segments: st.Segments(), FlatLeft: len(flatEntries(*dir))}
		writeJSON(stdout, out)
		return 0

	case "ls":
		sub := flag.NewFlagSet("ls", flag.ContinueOnError)
		sub.SetOutput(stderr)
		verbose := sub.Bool("v", false, "also print the human cell key and entry size")
		if err := sub.Parse(rest); err != nil {
			return 2
		}
		st, err := store.Open(*dir, store.Options{ReadOnly: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		err = st.Scan(func(key string, value []byte) error {
			if !*verbose {
				fmt.Fprintln(stdout, key)
				return nil
			}
			var e entryDoc
			cell := "?"
			if json.Unmarshal(value, &e) == nil && e.Key != "" {
				cell = e.Key
			}
			fmt.Fprintf(stdout, "%s  %8d  %s\n", key, len(value), cell)
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return 0

	case "get":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: beffstore [-cache DIR] get <key>")
			return 2
		}
		st, err := store.Open(*dir, store.Options{ReadOnly: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		v, ok, err := st.Get(rest[0])
		if err != nil {
			return fail(err)
		}
		if !ok {
			fmt.Fprintf(stderr, "beffstore: no entry %q\n", rest[0])
			return 1
		}
		stdout.Write(v)
		if len(v) > 0 && v[len(v)-1] != '\n' {
			io.WriteString(stdout, "\n")
		}
		return 0

	case "verify":
		st, err := store.Open(*dir, store.Options{ReadOnly: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		// Scan re-reads every record through the CRC check; on top of
		// that, every entry document must decode and carry a value.
		entries, bytes, bad := 0, int64(0), 0
		scanErr := st.Scan(func(key string, value []byte) error {
			entries++
			bytes += int64(len(value))
			var e entryDoc
			if err := json.Unmarshal(value, &e); err != nil || len(e.Value) == 0 || string(e.Value) == "null" {
				bad++
				fmt.Fprintf(stderr, "beffstore: entry %s: damaged document\n", key)
			}
			return nil
		})
		if scanErr != nil {
			return fail(scanErr)
		}
		fmt.Fprintf(stdout, "verified %d entries, %d bytes, %d damaged\n", entries, bytes, bad)
		if bad > 0 {
			return 1
		}
		return 0

	case "compact":
		st, err := store.Open(*dir, store.Options{NoAutoCompact: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		before := st.Stats()
		if err := st.Compact(); err != nil {
			return fail(err)
		}
		after := st.Stats()
		fmt.Fprintf(stdout, "compacted: %d -> %d segments, %d -> %d bytes (%d reclaimed), %d live entries\n",
			before.Segments, after.Segments, before.TotalBytes, after.TotalBytes,
			before.TotalBytes-after.TotalBytes, after.LiveEntries)
		return 0

	case "migrate":
		st, err := store.Open(*dir, store.Options{NoAutoCompact: true})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		moved, skipped := 0, 0
		for _, name := range flatEntries(*dir) {
			path := filepath.Join(*dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				skipped++
				continue
			}
			var e entryDoc
			if json.Unmarshal(data, &e) != nil || len(e.Value) == 0 || string(e.Value) == "null" {
				fmt.Fprintf(stderr, "beffstore: skipping damaged flat entry %s\n", name)
				skipped++
				continue
			}
			key := strings.TrimSuffix(name, ".json")
			if err := st.Put(key, data); err != nil {
				return fail(err)
			}
			os.Remove(path)
			moved++
		}
		fmt.Fprintf(stdout, "migrated %d flat entries, skipped %d; store now holds %d\n", moved, skipped, st.Len())
		return 0

	case "bench":
		return runBench(rest, stdout, stderr)

	default:
		fmt.Fprintf(stderr, "beffstore: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// flatEntries lists legacy one-file-per-entry cache files in dir:
// <64 hex chars>.json.
func flatEntries(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		stem := strings.TrimSuffix(name, ".json")
		if len(stem) != 64 || strings.Trim(stem, "0123456789abcdef") != "" {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// latencyStats summarises a latency sample in nanoseconds.
type latencyStats struct {
	AvgNs    float64 `json:"avg_ns"`
	MedianNs float64 `json:"median_ns"`
	P95Ns    float64 `json:"p95_ns"`
}

func summarize(samples []time.Duration) latencyStats {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return float64(samples[i].Nanoseconds())
	}
	return latencyStats{
		AvgNs:    float64(sum.Nanoseconds()) / float64(len(samples)),
		MedianNs: pick(0.5),
		P95Ns:    pick(0.95),
	}
}

// benchReport is the BENCH_store.json document.
type benchReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	Entries    int    `json:"entries"`
	ValueBytes int    `json:"value_bytes"`
	Lookups    int    `json:"lookups"`
	Scans      int    `json:"scans"`
	Backends   []struct {
		Backend     string       `json:"backend"`
		PointLookup latencyStats `json:"point_lookup"`
		FullScan    latencyStats `json:"full_scan"`
		DiskBytes   int64        `json:"disk_bytes"`
		Files       int          `json:"files"`
	} `json:"backends"`
}

func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	entries := fs.Int("entries", 12000, "cache entries to build each backend with")
	valueBytes := fs.Int("value-bytes", 2048, "payload bytes per entry (before the JSON envelope)")
	lookups := fs.Int("lookups", 20000, "random point lookups to time (OLTP pattern)")
	scans := fs.Int("scans", 5, "whole-cache scans to time (OLAP pattern)")
	out := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	work, err := os.MkdirTemp("", "beffstore-bench-*")
	if err != nil {
		fmt.Fprintf(stderr, "beffstore: %v\n", err)
		return 1
	}
	defer os.RemoveAll(work)

	rep := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Entries:    *entries,
		ValueBytes: *valueBytes,
		Lookups:    *lookups,
		Scans:      *scans,
	}

	// The entry documents are identical across backends: the envelope
	// the runner cache writes, around an opaque payload.
	fmt.Fprintf(stderr, "beffstore: building %d-entry corpora (%d payload bytes each)...\n", *entries, *valueBytes)
	keys := make([]string, *entries)
	docs := make([][]byte, *entries)
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, *valueBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15)
		rng.Read(payload)
		val, _ := json.Marshal(payload) // []byte marshals to a base64 JSON string
		doc, _ := json.MarshalIndent(entryDoc{
			Key:         fmt.Sprintf("bench:cell@%d", i),
			Fingerprint: json.RawMessage(fmt.Sprintf(`{"cell":%d}`, i)),
			Value:       val,
		}, "", " ")
		docs[i] = doc
	}

	for _, backend := range []string{runner.BackendStore, runner.BackendFlat} {
		dir := filepath.Join(work, backend)
		var get func(key string, i int) ([]byte, error)
		var scan func() (int, error)

		switch backend {
		case runner.BackendStore:
			st, err := store.Open(dir, store.Options{NoAutoCompact: true})
			if err != nil {
				fmt.Fprintf(stderr, "beffstore: %v\n", err)
				return 1
			}
			defer st.Close()
			for i, k := range keys {
				if err := st.Put(k, docs[i]); err != nil {
					fmt.Fprintf(stderr, "beffstore: %v\n", err)
					return 1
				}
			}
			get = func(key string, _ int) ([]byte, error) {
				v, ok, err := st.Get(key)
				if err == nil && !ok {
					err = fmt.Errorf("missing key %s", key)
				}
				return v, err
			}
			scan = func() (int, error) {
				n := 0
				err := st.Scan(func(_ string, v []byte) error { n += len(v); return nil })
				return n, err
			}
		case runner.BackendFlat:
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(stderr, "beffstore: %v\n", err)
				return 1
			}
			for i, k := range keys {
				if err := os.WriteFile(filepath.Join(dir, k+".json"), docs[i], 0o644); err != nil {
					fmt.Fprintf(stderr, "beffstore: %v\n", err)
					return 1
				}
			}
			get = func(key string, _ int) ([]byte, error) {
				return os.ReadFile(filepath.Join(dir, key+".json"))
			}
			scan = func() (int, error) {
				ents, err := os.ReadDir(dir)
				if err != nil {
					return 0, err
				}
				n := 0
				for _, ent := range ents {
					v, err := os.ReadFile(filepath.Join(dir, ent.Name()))
					if err != nil {
						return 0, err
					}
					n += len(v)
				}
				return n, nil
			}
		}

		fmt.Fprintf(stderr, "beffstore: timing %s backend...\n", backend)
		lookupRng := rand.New(rand.NewSource(2))
		samples := make([]time.Duration, *lookups)
		for i := range samples {
			k := keys[lookupRng.Intn(len(keys))]
			t0 := time.Now()
			if _, err := get(k, i); err != nil {
				fmt.Fprintf(stderr, "beffstore: %s lookup: %v\n", backend, err)
				return 1
			}
			samples[i] = time.Since(t0)
		}
		scanSamples := make([]time.Duration, *scans)
		for i := range scanSamples {
			t0 := time.Now()
			if _, err := scan(); err != nil {
				fmt.Fprintf(stderr, "beffstore: %s scan: %v\n", backend, err)
				return 1
			}
			scanSamples[i] = time.Since(t0)
		}

		var diskBytes int64
		files := 0
		filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			if info, err := d.Info(); err == nil {
				diskBytes += info.Size()
				files++
			}
			return nil
		})
		b := struct {
			Backend     string       `json:"backend"`
			PointLookup latencyStats `json:"point_lookup"`
			FullScan    latencyStats `json:"full_scan"`
			DiskBytes   int64        `json:"disk_bytes"`
			Files       int          `json:"files"`
		}{
			Backend:     backend,
			PointLookup: summarize(samples),
			FullScan:    summarize(scanSamples),
			DiskBytes:   diskBytes,
			Files:       files,
		}
		rep.Backends = append(rep.Backends, b)
	}

	writeJSON(stdout, rep)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "beffstore: %v\n", err)
			return 1
		}
		writeJSON(f, rep)
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "beffstore: %v\n", err)
			return 1
		}
	}
	return 0
}
