// Command balance reproduces Fig. 1: the balance factor b_eff / R_max
// for every machine profile, as a horizontal bar chart.
//
// Usage:
//
//	balance
//	balance -procs 16 -maxloop 4
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/report"
)

func main() {
	var (
		procsCap = flag.Int("procs", 24, "processor count per machine (capped by each profile's maximum)")
		maxLoop  = flag.Int("maxloop", 4, "max looplength")
	)
	flag.Parse()

	var rows []report.BalanceRow
	for _, p := range machine.All() {
		n := *procsCap
		if n > p.MaxProcs {
			n = p.MaxProcs
		}
		w, err := p.BuildWorld(n)
		fatal(err)
		res, err := core.Run(w, core.Options{
			MemoryPerProc: p.MemoryPerProc,
			MaxLooplength: *maxLoop,
			Reps:          1,
			SkipAnalysis:  true,
		})
		fatal(err)
		rows = append(rows, report.BalanceRow{
			System: p.Name,
			Procs:  n,
			Beff:   res.Beff,
			RmaxGF: p.RmaxGF(n),
		})
		fmt.Fprintf(os.Stderr, "measured %s\n", p.Key)
	}
	fmt.Println()
	fmt.Print(report.BalanceChart(rows))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "balance:", err)
		os.Exit(1)
	}
}
