package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Smoke tests of the built daemon: startup announcement, a full
// submit-and-fetch round trip over a real socket, and the SIGTERM
// drain path — the process-level contract the runbook and CI's beffd
// smoke step depend on.

var bin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "beffd-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "beffd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// startDaemon launches beffd on a free port in dir and returns the
// base URL once the listening announcement appears on stderr.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "localhost:0"}, args...)...)
	cmd.Dir = t.TempDir()
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "beffd: listening on "); ok {
				urlc <- rest
			}
		}
	}()
	select {
	case u := <-urlc:
		return cmd, u
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never announced its address")
		return nil, ""
	}
}

func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-queue-limit", "0"},
		{"-max-client-jobs", "0"},
		{"-max-jobs", "-1"},
		{"-drain-timeout", "0s"},
		{"-no-such-flag"},
		{"stray-arg"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%v accepted", args)
		}
		if !strings.Contains(string(out), "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestSubmitFetchDrain(t *testing.T) {
	cmd, base := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"bench":"beff","machines":["t3e"],"procs":[4],"lmax_override":1024,"max_looplength":1}`
	resp, err = http.Post(base+"/api/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &job); err != nil || job.ID == "" {
		t.Fatalf("submit response %s (err %v)", data, err)
	}

	// The stream blocks until the job finishes, so no polling loop.
	resp, err = http.Get(base + "/api/v1/jobs/" + job.ID + "/stream?interval=0s")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), `"done":true`) {
		t.Fatalf("stream never reported done:\n%s", stream)
	}

	resp, err = http.Get(base + "/api/v1/jobs/" + job.ID + "/cells/0")
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cell: %d: %s", resp.StatusCode, cell)
	}
	var res struct {
		Beff float64 `json:"Beff"`
	}
	if err := json.Unmarshal(cell, &res); err != nil || res.Beff <= 0 {
		t.Fatalf("cell result %s (err %v), want positive Beff", cell[:min(len(cell), 200)], err)
	}

	// SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
}
