// Command beffd serves the benchmark as a long-running HTTP service:
// clients POST sweep requests (machine × procs × perturb × reps) to
// /api/v1/sweeps, poll or stream per-job progress, and fetch results
// that are byte-identical to the same cells run through the CLI
// commands. All requests share one worker pool, one in-flight dedupe
// table and one on-disk result cache.
//
// Usage:
//
//	beffd                                    # localhost:8080
//	beffd -addr :9000 -j 8 -cache /var/cache/beff
//	beffd -queue-limit 512 -max-client-jobs 8
//	beffd -addr :0 -metrics beffd.ndjson     # free port, NDJSON stream
//
// Endpoints (full reference in docs/API.md):
//
//	POST   /api/v1/sweeps                submit a sweep, returns the job
//	GET    /api/v1/jobs                  list jobs
//	GET    /api/v1/jobs/{id}             job status with per-cell rows
//	GET    /api/v1/jobs/{id}/result      aggregate results (409 until done)
//	GET    /api/v1/jobs/{id}/cells/{i}   one cell's raw result JSON
//	GET    /api/v1/jobs/{id}/stream      NDJSON progress stream
//	DELETE /api/v1/jobs/{id}             cancel queued cells
//	GET    /healthz                      readiness (503 while draining)
//	GET    /metrics, /vars               service metrics
//
// SIGTERM or SIGINT drains gracefully: admission stops, every admitted
// cell finishes (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/obs"
	"github.com/hpcbench/beff/internal/runner"
	"github.com/hpcbench/beff/internal/serve"
)

func main() {
	c := cli.New("beffd")
	c.ServeFlags(nil)
	c.ObsFlags(nil)
	var rf runner.Flags
	rf.Register(flag.CommandLine)
	flag.Parse()
	c.Validate()
	if flag.NArg() > 0 {
		c.UsageErr("unexpected arguments: %v", flag.Args())
	}

	reg := obs.New()
	s, err := serve.New(serve.Config{
		Workers:       rf.J,
		CacheDir:      rf.Dir,
		CacheBackend:  rf.Backend,
		NoCache:       rf.NoCache,
		QueueLimit:    c.QueueLimit,
		MaxClientJobs: c.MaxClientJobs,
		MaxJobs:       c.MaxJobs,
		Registry:      reg,
	})
	c.Fatal(err)

	// The -metrics / -progress / -debug-addr surface observes the same
	// registry the service instruments live in; -debug-addr is a second
	// listener, useful when the API port is not reachable from the
	// operator's network.
	var stream *obs.Streamer
	if c.MetricsPath != "" {
		stream, err = obs.OpenStream(c.MetricsPath, reg, c.MetricsInterval)
		c.Fatal(err)
	}
	var tick *obs.Ticker
	if c.Progress {
		tick = obs.NewTicker(os.Stderr, reg, 500*time.Millisecond, cli.ProgressLine)
	}
	if c.DebugAddr != "" {
		addr, _, err := obs.Serve(c.DebugAddr, reg)
		c.Fatal(err)
		fmt.Fprintf(os.Stderr, "beffd: serving metrics at http://%s/metrics\n", addr)
	}

	ln, err := net.Listen("tcp", c.Addr)
	c.Fatal(err)
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if dir := s.CacheDir(); dir != "" {
		fmt.Fprintf(os.Stderr, "beffd: cache at %s (%s backend)\n", dir, s.CacheBackend())
	}
	fmt.Fprintf(os.Stderr, "beffd: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		c.Fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "beffd: %v: draining (timeout %v)\n", got, c.DrainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.DrainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "beffd: drain incomplete: %v\n", err)
		srv.Close()
		os.Exit(1)
	}
	srv.Shutdown(ctx)
	if tick != nil {
		tick.Stop()
	}
	if stream != nil {
		c.Fatal(stream.Close())
	}
	fmt.Fprintln(os.Stderr, "beffd: drained, bye")
}
