// Command topclusters is the automation the paper's §6 plans for the
// IEEE TFCC "Top Clusters" list: it runs both benchmarks on a machine
// within a fixed schedule — the communication benchmark in the 3-5
// minute class and the I/O benchmark in the 30 minute class (all
// virtual time here) — and emits one combined, machine-readable record
// (SKaMPI-comparable output; see internal/report).
//
// Usage:
//
//	topclusters -machine cluster -procs 16
//	topclusters -machine sp -procs 32 -io-minutes 30 -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/report"
)

func main() {
	var (
		machineKey = flag.String("machine", "cluster", "machine profile key")
		procs      = flag.Int("procs", 8, "processes for b_eff (whole machine) and b_eff_io (I/O partition)")
		ioMinutes  = flag.Float64("io-minutes", 3, "virtual minutes scheduled for b_eff_io (paper: 30 for the list)")
		outPath    = flag.String("out", "", "write the combined record to this file (default stdout)")
		maxLoop    = flag.Int("maxloop", 4, "b_eff max looplength")
	)
	flag.Parse()

	p, err := machine.Lookup(*machineKey)
	fatal(err)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		fatal(err)
		defer f.Close()
		out = f
	}

	// Communication benchmark: must run on the whole requested
	// partition (b_eff computes an aggregate).
	w, err := p.BuildWorld(*procs)
	fatal(err)
	bres, err := core.Run(w, core.Options{
		MemoryPerProc: p.MemoryPerProc,
		MaxLooplength: *maxLoop,
		Reps:          1,
	})
	fatal(err)
	fmt.Fprintf(os.Stderr, "b_eff done: %.1f MB/s\n", bres.Beff/1e6)
	fatal(report.SKaMPIBeff(out, p.Key, bres))

	// I/O benchmark, when the machine has an I/O model.
	if p.FS != nil {
		iw, err := p.BuildIOWorld(*procs)
		fatal(err)
		fs, err := p.BuildFS()
		fatal(err)
		iores, err := beffio.Run(iw, fs, beffio.Options{
			T:                 des.DurationOf(*ioMinutes * 60),
			MPart:             p.MPart(),
			MaxRepsPerPattern: 1 << 14,
		})
		fatal(err)
		fmt.Fprintf(os.Stderr, "b_eff_io done: %.1f MB/s\n", iores.BeffIO/1e6)
		fatal(report.SKaMPIBeffIO(out, p.Key, iores))
	} else {
		fmt.Fprintf(os.Stderr, "machine %s has no I/O model; skipping b_eff_io\n", p.Key)
	}

	// The combined Top-Clusters style footer.
	fmt.Fprintf(out, "topclusters machine=%q procs=%d beff=%.3f balance=%.5f\n",
		p.Key, *procs, bres.Beff/1e6, bres.Beff/(p.RmaxGF(*procs)*1e9))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "topclusters:", err)
		os.Exit(1)
	}
}
