// Command beff runs the effective bandwidth benchmark on a simulated
// machine profile and prints the Table-1 row plus, optionally, the
// full measurement protocol.
//
// Usage:
//
//	beff -machine t3e -procs 64
//	beff -machine sr8000-rr -procs 24 -protocol
//	beff -machine sx5 -procs 4 -csv beff.csv
//	beff -machine t3e -procs 16 -perturb stormy -seed 3 -reps 3
//	beff -machine t3e -procs 64 -progress -metrics run.ndjson
//	beff -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/simnet"
	"github.com/hpcbench/beff/internal/trace"
)

func main() {
	c := cli.New("beff")
	c.MachineFlags(nil)
	c.ConfigFlag(nil)
	c.SeedFlag(nil, "seed for the random polygons and the -perturb fault schedule")
	c.RepsFlag(nil, 1, "repetitions per measurement (paper uses 3; matters under -perturb, where timings vary)")
	c.PerturbFlag(nil, "")
	c.ShardsFlag(nil)
	c.CheckFlag(nil, false)
	c.TraceFlag(nil)
	c.ProfileFlags(nil)
	c.ObsFlags(nil)
	var (
		maxLoop  = flag.Int("maxloop", 8, "max looplength (300 = paper-faithful; smaller = faster simulation)")
		protocol = flag.Bool("protocol", false, "print the full measurement protocol")
		csvPath  = flag.String("csv", "", "write the per-pattern/size/method data as CSV to this file")
		skampi   = flag.String("skampi", "", "write SKaMPI-comparison-page records to this file")
		hotspots = flag.Int("hotspots", 0, "print the N busiest network resources after the run")
		list     = flag.Bool("list", false, "list machine profiles and exit")
	)
	flag.Parse()

	c.Validate()
	switch {
	case *maxLoop < 1:
		c.UsageErr("-maxloop must be >= 1, got %d", *maxLoop)
	case *hotspots < 0:
		c.UsageErr("-hotspots must not be negative, got %d", *hotspots)
	case c.Shards > 1 && c.TracePath != "":
		c.UsageErr("-trace requires -shards 1: a sharded run spans many detached worlds and has no single message timeline")
	case c.Shards > 1 && *hotspots > 0:
		c.UsageErr("-hotspots requires -shards 1: utilization is per-network and a sharded run spans many detached worlds")
	}

	if *list {
		for _, p := range machine.All() {
			fmt.Printf("%-12s %s\n", p.Key, p)
		}
		return
	}

	stopProf := c.StartProfiling()
	defer stopProf()

	p, err := c.LoadMachine()
	c.Fatal(err)
	w, err := p.BuildWorld(c.Procs)
	c.Fatal(err)

	// Every subscriber below — obs instruments, perturbation, trace,
	// checker — attaches through the composable Observer registrations,
	// so their relative order does not matter.
	o := c.StartObs()
	o.InstrumentWorld(&w)
	o.InstrumentNet(w.Net)

	pert, err := c.LoadPerturb()
	c.Fatal(err)
	if pert != nil {
		pert.ApplyNet(w.Net, c.Seed)
		fmt.Printf("perturbation: %s (seed %d)\n", pert.Name, c.Seed)
	}

	var col *trace.Collector
	if c.TracePath != "" {
		col = trace.New()
		w.Net.Observe(col.OnTransfer)
	}

	var chk *check.Checker
	if c.Check {
		chk = check.New()
		chk.WatchWorld(&w)
		chk.WatchNet(w.Net)
	}

	o.StartTicker()
	opt := core.Options{
		MemoryPerProc: p.MemoryPerProc,
		Seed:          c.Seed,
		MaxLooplength: *maxLoop,
		Reps:          c.Reps,
	}
	var res *core.Result
	if c.Shards > 1 {
		// The sharded executor builds one detached world per chain; the
		// factory reproduces every attachment the sequential path makes,
		// plus the horizon watch re-verifying the shard causality claims
		// on each replayed slice. The pre-built (and pre-attached) world
		// serves as the run's first world.
		fabric := w.Net.Config().Fabric
		parts := simnet.Partition(fabric, c.Shards)
		la := simnet.Lookahead(fabric, parts)
		first := &w
		factory := func(entries []des.Time) (mpi.WorldConfig, error) {
			if entries == nil && first != nil {
				fw := *first
				first = nil
				return fw, nil
			}
			fw, err := p.BuildWorld(c.Procs)
			if err != nil {
				return fw, err
			}
			o.InstrumentWorld(&fw)
			o.InstrumentNet(fw.Net)
			if pert != nil {
				pert.ApplyNet(fw.Net, c.Seed)
			}
			if chk != nil {
				chk.WatchWorld(&fw)
				chk.WatchNet(fw.Net)
				chk.WatchHorizon(fw.Net, parts, entries, la)
			}
			return fw, nil
		}
		var st *core.ShardStats
		// A perturbation profile samples absolute virtual time, which a
		// speculative (time-translated) world would get wrong: disable
		// speculation and let every chain re-simulate exactly.
		res, st, err = core.RunSharded(factory, opt, core.ShardOptions{
			Shards: c.Shards,
			NoSpec: pert != nil,
			Obs:    o.Reg,
		})
		c.Fatal(err)
		fmt.Fprintf(os.Stderr, "shards: %d workers, %d chains, %d units speculated, %d re-simulated, %.1fs frontier stall\n",
			st.Shards, st.Chains, st.SpecHitUnits, st.ResimUnits, st.FrontierStall.Seconds())
	} else {
		res, err = core.Run(w, opt)
		c.Fatal(err)
		o.RecordNetBusy(w.Net, des.Time(des.DurationOf(res.Elapsed)))
	}
	o.Close()

	if chk != nil {
		chk.VerifyBeff(res)
		c.Fatal(chk.Finish())
		fmt.Println("check: all invariants held")
	}

	fmt.Print(report.Table1([]report.Table1Row{report.FromBeff(p.Name, res)}))
	fmt.Printf("\nbalance factor b_eff/R_max = %.4f bytes/flop (R_max %.0f GF)\n",
		res.Beff/(p.RmaxGF(c.Procs)*1e9), p.RmaxGF(c.Procs))

	if *protocol {
		fmt.Println()
		fmt.Print(report.BeffProtocol(res))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		c.Fatal(err)
		c.Fatal(report.BeffCSV(f, p.Key, res))
		c.Fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *skampi != "" {
		f, err := os.Create(*skampi)
		c.Fatal(err)
		c.Fatal(report.SKaMPIBeff(f, p.Key, res))
		c.Fatal(f.Close())
		fmt.Printf("wrote %s\n", *skampi)
	}
	if *hotspots > 0 {
		stats := w.Net.HotResources(des.Time(des.DurationOf(res.Elapsed)), *hotspots)
		fmt.Println()
		fmt.Print(report.UtilizationTable(stats))
	}
	if col != nil {
		f, err := os.Create(c.TracePath)
		c.Fatal(err)
		c.Fatal(col.WriteChromeTrace(f))
		c.Fatal(f.Close())
		fmt.Printf("wrote %s (%s)\n", c.TracePath, col.Summarize())
	}
}
