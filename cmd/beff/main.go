// Command beff runs the effective bandwidth benchmark on a simulated
// machine profile and prints the Table-1 row plus, optionally, the
// full measurement protocol.
//
// Usage:
//
//	beff -machine t3e -procs 64
//	beff -machine sr8000-rr -procs 24 -protocol
//	beff -machine sx5 -procs 4 -csv beff.csv
//	beff -machine t3e -procs 16 -perturb stormy -seed 3 -reps 3
//	beff -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/prof"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/trace"
)

func main() {
	var (
		machineKey = flag.String("machine", "cluster", "machine profile key (see -list)")
		configPath = flag.String("config", "", "JSON machine definition file (overrides -machine)")
		procs      = flag.Int("procs", 8, "number of MPI processes")
		maxLoop    = flag.Int("maxloop", 8, "max looplength (300 = paper-faithful; smaller = faster simulation)")
		reps       = flag.Int("reps", 1, "repetitions per measurement (paper uses 3; matters under -perturb, where timings vary)")
		seed       = flag.Int64("seed", 1, "seed for the random polygons and the -perturb fault schedule")
		perturbArg = flag.String("perturb", "", "fault-injection profile: preset name ("+strings.Join(perturb.Presets(), ", ")+") or JSON file; empty disables perturbation")
		protocol   = flag.Bool("protocol", false, "print the full measurement protocol")
		csvPath    = flag.String("csv", "", "write the per-pattern/size/method data as CSV to this file")
		skampi     = flag.String("skampi", "", "write SKaMPI-comparison-page records to this file")
		tracePath  = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of every message to this file")
		hotspots   = flag.Int("hotspots", 0, "print the N busiest network resources after the run")
		checkRun   = flag.Bool("check", false, "verify runtime invariants (byte conservation, causality, reductions) and fail on violation")
		list       = flag.Bool("list", false, "list machine profiles and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	switch {
	case *procs < 1:
		usageErr("-procs must be >= 1, got %d", *procs)
	case *maxLoop < 1:
		usageErr("-maxloop must be >= 1, got %d", *maxLoop)
	case *reps < 1:
		usageErr("-reps must be >= 1, got %d", *reps)
	case *seed < 1:
		usageErr("-seed must be >= 1, got %d", *seed)
	case *hotspots < 0:
		usageErr("-hotspots must not be negative, got %d", *hotspots)
	}

	if *list {
		for _, p := range machine.All() {
			fmt.Printf("%-12s %s\n", p.Key, p)
		}
		return
	}

	defer func() { fatal(prof.WriteHeap(*memProfile)) }()
	stopCPU, err := prof.StartCPU(*cpuProfile)
	fatal(err)
	defer stopCPU()

	p, err := loadProfile(*configPath, *machineKey)
	fatal(err)
	w, err := p.BuildWorld(*procs)
	fatal(err)

	if *perturbArg != "" {
		prof, err := perturb.Load(*perturbArg)
		fatal(err)
		prof.ApplyNet(w.Net, *seed)
		fmt.Printf("perturbation: %s (seed %d)\n", prof.Name, *seed)
	}

	var col *trace.Collector
	if *tracePath != "" {
		col = trace.New()
		w.Net.SetOnTransfer(col.OnTransfer)
	}

	// The checker chains onto whatever hooks are already installed
	// (trace, perturbation), so it must come after them.
	var chk *check.Checker
	if *checkRun {
		chk = check.New()
		chk.WatchWorld(&w)
		chk.WatchNet(w.Net)
	}

	res, err := core.Run(w, core.Options{
		MemoryPerProc: p.MemoryPerProc,
		Seed:          *seed,
		MaxLooplength: *maxLoop,
		Reps:          *reps,
	})
	fatal(err)

	if chk != nil {
		chk.VerifyBeff(res)
		fatal(chk.Finish())
		fmt.Println("check: all invariants held")
	}

	fmt.Print(report.Table1([]report.Table1Row{report.FromBeff(p.Name, res)}))
	fmt.Printf("\nbalance factor b_eff/R_max = %.4f bytes/flop (R_max %.0f GF)\n",
		res.Beff/(p.RmaxGF(*procs)*1e9), p.RmaxGF(*procs))

	if *protocol {
		fmt.Println()
		fmt.Print(report.BeffProtocol(res))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatal(err)
		fatal(report.BeffCSV(f, p.Key, res))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *skampi != "" {
		f, err := os.Create(*skampi)
		fatal(err)
		fatal(report.SKaMPIBeff(f, p.Key, res))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *skampi)
	}
	if *hotspots > 0 {
		stats := w.Net.HotResources(des.Time(des.DurationOf(res.Elapsed)), *hotspots)
		fmt.Println()
		fmt.Print(report.UtilizationTable(stats))
	}
	if col != nil {
		f, err := os.Create(*tracePath)
		fatal(err)
		fatal(col.WriteChromeTrace(f))
		fatal(f.Close())
		fmt.Printf("wrote %s (%s)\n", *tracePath, col.Summarize())
	}
}

// loadProfile resolves either a JSON definition or a built-in key.
func loadProfile(configPath, key string) (*machine.Profile, error) {
	if configPath != "" {
		return machine.LoadConfig(configPath)
	}
	return machine.Lookup(key)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "beff:", err)
		os.Exit(1)
	}
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "beff: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
