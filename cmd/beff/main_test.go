package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke tests: the built binary's exit codes and usage behaviour —
// the contract scripts and CI depend on, which unit tests of the
// internals cannot see.

var bin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "beff-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "beff")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the binary and returns combined output and exit code.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

// tinyConfig is a 1 MB-per-proc machine: L_max collapses to 8 KB so a
// full benchmark run completes in milliseconds.
func tinyConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.json")
	cfg := `{"key":"tiny","name":"tiny test box","maxProcs":4,"memoryPerProcMB":1,
	 "fabric":{"aggregateGBps":1,"latencyUs":5},
	 "nic":{"txGBps":1,"rxGBps":1,"portGBps":1,"sendOverheadUs":2,"recvOverheadUs":2,"memcpyGBps":2}}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnknownFlagFailsWithUsage(t *testing.T) {
	out, code := run(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(out, "Usage") {
		t.Fatalf("no usage text:\n%s", out)
	}
}

func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-procs", "0"},
		{"-procs", "-4"},
		{"-maxloop", "0"},
		{"-reps", "0"},
		{"-reps", "-1"},
		{"-seed", "0"},
		{"-seed", "-7"},
		{"-hotspots", "-1"},
	} {
		out, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v accepted", args)
		}
		if !strings.Contains(out, "Usage") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}

func TestUnreadableConfigFails(t *testing.T) {
	out, code := run(t, "-config", filepath.Join(t.TempDir(), "absent.json"))
	if code == 0 {
		t.Fatal("unreadable config accepted")
	}
	if !strings.Contains(out, "beff:") {
		t.Fatalf("no error message:\n%s", out)
	}
}

func TestUnknownMachineFails(t *testing.T) {
	out, code := run(t, "-machine", "no-such-machine")
	if code == 0 {
		t.Fatal("unknown machine accepted")
	}
	if !strings.Contains(out, "no-such-machine") {
		t.Fatalf("error does not name the machine:\n%s", out)
	}
}

func TestListSucceeds(t *testing.T) {
	out, code := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list failed (%d):\n%s", code, out)
	}
	for _, key := range []string{"t3e", "sp", "cluster"} {
		if !strings.Contains(out, key) {
			t.Errorf("-list missing %s:\n%s", key, out)
		}
	}
}

func TestCheckedRunSucceeds(t *testing.T) {
	out, code := run(t, "-config", tinyConfig(t), "-procs", "2", "-maxloop", "1", "-check")
	if code != 0 {
		t.Fatalf("checked run failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "check: all invariants held") {
		t.Fatalf("no check confirmation:\n%s", out)
	}
	if !strings.Contains(out, "b_eff") {
		t.Fatalf("no result table:\n%s", out)
	}
}
