// Command ringpattern is the repository's port of the paper's
// ring_numbers.c [19]: it prints the ring partition of each of the six
// b_eff ring patterns for a given process count, or a range.
//
// Usage:
//
//	ringpattern -n 7
//	ringpattern -from 2 -to 28      # the list the paper cites for pattern 3
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcbench/beff/internal/core"
)

func main() {
	var (
		n    = flag.Int("n", 0, "process count (prints all six patterns)")
		from = flag.Int("from", 0, "range start (prints pattern table per count)")
		to   = flag.Int("to", 0, "range end, inclusive")
	)
	flag.Parse()

	switch {
	case *n > 0:
		printAll(*n)
	case *from > 0 && *to >= *from:
		for k := *from; k <= *to; k++ {
			printAll(k)
			fmt.Println()
		}
	default:
		fmt.Fprintln(os.Stderr, "ringpattern: need -n N or -from A -to B")
		os.Exit(2)
	}
}

func printAll(n int) {
	fmt.Printf("%d processes:\n", n)
	for pat := 0; pat < core.NumRingPatterns; pat++ {
		std := core.StandardRingSize(pat, n)
		sizes := core.RingSizes(n, std)
		fmt.Printf("  pattern %d (std %3d): %v\n", pat+1, std, sizes)
	}
}
