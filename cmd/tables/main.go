// Command tables regenerates every table and figure of the paper's
// evaluation from the simulated machines:
//
//	tables -table1      Table 1: b_eff across systems and sizes
//	tables -fig1        Fig. 1: balance factors
//	tables -fig3        Fig. 3: b_eff_io vs processes, T3E vs SP, several T
//	tables -fig4        Fig. 4: per-pattern I/O detail, four systems
//	tables -fig5        Fig. 5: final b_eff_io comparison
//	tables -all         everything (EXPERIMENTS.md is generated from this)
//
// By default reduced processor counts keep simulated event counts
// small; -full uses the paper's partition sizes (slower).
//
// Every (machine, partition, parameters) combination is an independent
// simulation cell: cells fan out over -j workers and their results
// memoise under -cache, so a warm rerun renders everything without
// re-simulating. Output is byte-identical at any -j. If any cell fails
// the command exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/runner"
)

var (
	full    = flag.Bool("full", false, "use the paper's processor counts (slow)")
	maxLoop = flag.Int("maxloop", 2, "b_eff max looplength")
	ioT     = flag.Float64("T", 45, "b_eff_io scheduled time per partition, virtual seconds")
	csvDir  = flag.String("csvdir", "", "also write machine-readable CSV artifacts into this directory")
	rflags  runner.Flags
)

// writeCSV drops an experiment's data into the csvdir, if requested.
func writeCSV(name string, header []string, rows [][]string) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(*csvDir, name))
	fatal(err)
	fatal(report.CSV(f, header, rows))
	fatal(f.Close())
}

func main() {
	var (
		table1 = flag.Bool("table1", false, "regenerate Table 1")
		fig1   = flag.Bool("fig1", false, "regenerate Fig. 1")
		fig3   = flag.Bool("fig3", false, "regenerate Fig. 3")
		fig4   = flag.Bool("fig4", false, "regenerate Fig. 4")
		fig5   = flag.Bool("fig5", false, "regenerate Fig. 5")
		all    = flag.Bool("all", false, "regenerate everything")
	)
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if *all {
		*table1, *fig1, *fig3, *fig4, *fig5 = true, true, true, true, true
	}
	if !*table1 && !*fig1 && !*fig3 && !*fig4 && !*fig5 {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		runTable1()
	}
	if *fig1 {
		runFig1()
	}
	if *fig3 {
		runFig3()
	}
	if *fig4 {
		runFig4()
	}
	if *fig5 {
		runFig5()
	}
}

func beffOpt() core.Options {
	return core.Options{MaxLooplength: *maxLoop, Reps: 1, SkipAnalysis: true}
}

// beffSpec names one b_eff cell of a figure or table.
type beffSpec struct {
	key   string
	procs int
}

// beffSweep measures every spec through the runner and returns the
// results in spec order. Table 1 and Fig. 1 overlap in specs, so with
// the cache on, the second one renders from the first one's cells.
func beffSweep(label string, specs []beffSpec) []*core.Result {
	cells := make([]runner.Cell[*core.Result], len(specs))
	for i, s := range specs {
		cells[i] = runner.BeffCell(s.key, s.procs, beffOpt())
	}
	results := runner.Sweep(cells, rflags.Options(label))
	if err := runner.Err(results); err != nil {
		fatal(err)
	}
	return runner.Values(results)
}

// ioSweep does the same for b_eff_io cells.
func ioSweep(label string, cells []runner.Cell[*beffio.Result]) []*beffio.Result {
	results := runner.Sweep(cells, rflags.Options(label))
	if err := runner.Err(results); err != nil {
		fatal(err)
	}
	return runner.Values(results)
}

// table1Sizes lists the (machine, procs) pairs of Table 1; the quick
// variant trims the largest partitions.
func table1Sizes() []struct {
	key   string
	procs []int
} {
	if *full {
		return []struct {
			key   string
			procs []int
		}{
			{"t3e", []int{512, 256, 128, 64, 24, 2}},
			{"sr8000-rr", []int{128, 24}},
			{"sr8000-seq", []int{24}},
			{"sr2201", []int{16}},
			{"sx5", []int{4}},
			{"sx4", []int{16, 8, 4}},
			{"hpv", []int{7}},
			{"sv1", []int{15}},
		}
	}
	return []struct {
		key   string
		procs []int
	}{
		{"t3e", []int{64, 24, 2}},
		{"sr8000-rr", []int{24}},
		{"sr8000-seq", []int{24}},
		{"sr2201", []int{16}},
		{"sx5", []int{4}},
		{"sx4", []int{16, 8, 4}},
		{"hpv", []int{7}},
		{"sv1", []int{15}},
	}
}

func mustLookup(key string) *machine.Profile {
	p, err := machine.Lookup(key)
	fatal(err)
	return p
}

func runTable1() {
	fmt.Println("=== Table 1: Effective Benchmark Results ===")
	var specs []beffSpec
	for _, m := range table1Sizes() {
		for _, n := range m.procs {
			specs = append(specs, beffSpec{m.key, n})
		}
	}
	measured := beffSweep("table1", specs)
	var rows []report.Table1Row
	i := 0
	for _, m := range table1Sizes() {
		p := mustLookup(m.key)
		for _, n := range m.procs {
			res := measured[i]
			i++
			// Like the paper's table, quote the ping-pong only once
			// per machine (it is measured within each partition; the
			// largest is the representative one).
			row := report.FromBeff(p.Name, res)
			if n != m.procs[0] {
				row.PingPong = 0
			}
			rows = append(rows, row)
		}
	}
	fmt.Print(report.Table1(rows))
	fmt.Println()
	var csv [][]string
	for _, r := range rows {
		csv = append(csv, []string{
			r.System, fmt.Sprint(r.Procs),
			fmt.Sprintf("%.1f", r.Beff/1e6),
			fmt.Sprintf("%.1f", r.Beff/float64(r.Procs)/1e6),
			fmt.Sprint(r.Lmax),
			fmt.Sprintf("%.1f", r.PingPong/1e6),
			fmt.Sprintf("%.1f", r.AtLmax/1e6),
			fmt.Sprintf("%.1f", r.RingOnly/float64(r.Procs)/1e6),
		})
	}
	writeCSV("table1.csv",
		[]string{"system", "procs", "beff_mbps", "beff_per_proc", "lmax_bytes", "pingpong_mbps", "at_lmax_mbps", "ring_per_proc_mbps"},
		csv)
}

func runFig1() {
	fmt.Println("=== Figure 1: Balance factor ===")
	var specs []beffSpec
	for _, m := range table1Sizes() {
		specs = append(specs, beffSpec{m.key, m.procs[0]})
	}
	measured := beffSweep("fig1", specs)
	var rows []report.BalanceRow
	for i, m := range table1Sizes() {
		p := mustLookup(m.key)
		n := m.procs[0]
		rows = append(rows, report.BalanceRow{
			System: p.Name, Procs: n, Beff: measured[i].Beff, RmaxGF: p.RmaxGF(n),
		})
	}
	fmt.Print(report.BalanceChart(rows))
	fmt.Println()
}

// seriesCSV flattens chart series into CSV rows in deterministic order
// (series order, then ascending partition size).
func seriesCSV(series []report.Series) [][]string {
	var csv [][]string
	for _, s := range series {
		procs := make([]int, 0, len(s.Points))
		for n := range s.Points {
			procs = append(procs, n)
		}
		sort.Ints(procs)
		for _, n := range procs {
			csv = append(csv, []string{s.Name, fmt.Sprint(n), fmt.Sprintf("%.2f", s.Points[n]/1e6)})
		}
	}
	return csv
}

func runFig3() {
	fmt.Println("=== Figure 3: b_eff_io vs partition size, T3E vs SP, several T ===")
	sizes := []int{2, 4, 8, 16, 32}
	if *full {
		sizes = []int{8, 16, 32, 64, 128}
	}
	ts := []float64{*ioT / 2, *ioT, *ioT * 2}
	type spec struct {
		key string
		t   float64
	}
	var specs []spec
	var cells []runner.Cell[*beffio.Result]
	for _, key := range []string{"t3e", "sp"} {
		for _, t := range ts {
			specs = append(specs, spec{key, t})
			for _, n := range sizes {
				opt := beffio.Options{
					T: des.DurationOf(t),
					// The paper's Fig. 3 data was "measured partially
					// without pattern type 3".
					SkipTypes:         []beffio.PatternType{beffio.Segmented},
					MaxRepsPerPattern: 1 << 14,
				}
				cell := runner.BeffIOCell(key, n, opt)
				cell.Key = fmt.Sprintf("beffio:%s@%d,T=%.0fs", key, n, t)
				cells = append(cells, cell)
			}
		}
	}
	measured := ioSweep("fig3", cells)
	var series []report.Series
	for si, sp := range specs {
		s := report.Series{Name: fmt.Sprintf("%s T=%.0fs", sp.key, sp.t), Points: map[int]float64{}}
		for ni, n := range sizes {
			s.Points[n] = measured[si*len(sizes)+ni].BeffIO
		}
		series = append(series, s)
	}
	fmt.Print(report.SweepChart("b_eff_io (MB/s) over number of I/O processes", series))
	fmt.Println()
	writeCSV("fig3.csv", []string{"series", "procs", "beffio_mbps"}, seriesCSV(series))
}

func runFig4() {
	fmt.Println("=== Figure 4: per-pattern bandwidth, three access methods, four systems ===")
	procs := map[string]int{"sp": 8, "t3e": 16, "sr8000-seq": 8, "sx5": 4}
	if *full {
		procs = map[string]int{"sp": 64, "t3e": 32, "sr8000-seq": 16, "sx5": 4}
	}
	keys := []string{"sp", "t3e", "sr8000-seq", "sx5"}
	var cells []runner.Cell[*beffio.Result]
	for _, key := range keys {
		cells = append(cells, runner.BeffIOCell(key, procs[key], beffio.Options{
			T:                 des.DurationOf(*ioT),
			MaxRepsPerPattern: 1 << 14,
		}))
	}
	measured := ioSweep("fig4", cells)
	for i, key := range keys {
		p := mustLookup(key)
		res := measured[i]
		fmt.Printf("\n--- %s (%s) ---\n", p.Name, p.FS.Name)
		fmt.Print(report.BeffIOProtocol(res))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, "fig4_"+key+".csv"))
			fatal(err)
			fatal(report.BeffIOCSV(f, key, res))
			fatal(f.Close())
		}
	}
	fmt.Println()
}

func runFig5() {
	fmt.Println("=== Figure 5: final b_eff_io comparison ===")
	sizesFor := map[string][]int{
		"sp":         {4, 8, 16},
		"t3e":        {4, 8, 16},
		"sr8000-seq": {4, 8},
		"sx5":        {2, 4},
	}
	if *full {
		sizesFor = map[string][]int{
			"sp":         {16, 32, 64, 128},
			"t3e":        {16, 32, 64, 128},
			"sr8000-seq": {8, 16},
			"sx5":        {4, 8},
		}
	}
	keys := []string{"sp", "t3e", "sr8000-seq", "sx5"}
	var cells []runner.Cell[*beffio.Result]
	for _, key := range keys {
		for _, n := range sizesFor[key] {
			cells = append(cells, runner.BeffIOCell(key, n, beffio.Options{
				T:                 des.DurationOf(*ioT),
				MaxRepsPerPattern: 1 << 14,
			}))
		}
	}
	measured := ioSweep("fig5", cells)
	var series []report.Series
	i := 0
	for _, key := range keys {
		p := mustLookup(key)
		s := report.Series{Name: p.Name, Points: map[int]float64{}}
		var results []*beffio.Result
		for range sizesFor[key] {
			results = append(results, measured[i])
			s.Points[measured[i].Procs] = measured[i].BeffIO
			i++
		}
		series = append(series, s)
		best := beffio.SystemValue(results)
		fmt.Printf("%-28s system b_eff_io = %8.1f MB/s (at %d procs)\n", p.Key, best.BeffIO/1e6, best.Procs)
	}
	fmt.Println()
	fmt.Print(report.SweepChart("b_eff_io (MB/s) per partition size", series))
	fmt.Println()
	writeCSV("fig5.csv", []string{"series", "procs", "beffio_mbps"}, seriesCSV(series))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
