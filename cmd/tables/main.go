// Command tables regenerates every table and figure of the paper's
// evaluation from the simulated machines:
//
//	tables -table1      Table 1: b_eff across systems and sizes
//	tables -fig1        Fig. 1: balance factors
//	tables -fig3        Fig. 3: b_eff_io vs processes, T3E vs SP, several T
//	tables -fig4        Fig. 4: per-pattern I/O detail, four systems
//	tables -fig5        Fig. 5: final b_eff_io comparison
//	tables -all         everything (EXPERIMENTS.md is generated from this)
//
// By default reduced processor counts keep simulated event counts
// small; -full uses the paper's partition sizes (slower).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/core"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/machine"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/report"
	"github.com/hpcbench/beff/internal/simfs"
)

var (
	full    = flag.Bool("full", false, "use the paper's processor counts (slow)")
	maxLoop = flag.Int("maxloop", 2, "b_eff max looplength")
	ioT     = flag.Float64("T", 45, "b_eff_io scheduled time per partition, virtual seconds")
	csvDir  = flag.String("csvdir", "", "also write machine-readable CSV artifacts into this directory")
)

// writeCSV drops an experiment's data into the csvdir, if requested.
func writeCSV(name string, header []string, rows [][]string) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(*csvDir, name))
	fatal(err)
	fatal(report.CSV(f, header, rows))
	fatal(f.Close())
}

func main() {
	var (
		table1 = flag.Bool("table1", false, "regenerate Table 1")
		fig1   = flag.Bool("fig1", false, "regenerate Fig. 1")
		fig3   = flag.Bool("fig3", false, "regenerate Fig. 3")
		fig4   = flag.Bool("fig4", false, "regenerate Fig. 4")
		fig5   = flag.Bool("fig5", false, "regenerate Fig. 5")
		all    = flag.Bool("all", false, "regenerate everything")
	)
	flag.Parse()
	if *all {
		*table1, *fig1, *fig3, *fig4, *fig5 = true, true, true, true, true
	}
	if !*table1 && !*fig1 && !*fig3 && !*fig4 && !*fig5 {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		runTable1()
	}
	if *fig1 {
		runFig1()
	}
	if *fig3 {
		runFig3()
	}
	if *fig4 {
		runFig4()
	}
	if *fig5 {
		runFig5()
	}
}

// table1Sizes lists the (machine, procs) pairs of Table 1; the quick
// variant trims the largest partitions.
func table1Sizes() []struct {
	key   string
	procs []int
} {
	if *full {
		return []struct {
			key   string
			procs []int
		}{
			{"t3e", []int{512, 256, 128, 64, 24, 2}},
			{"sr8000-rr", []int{128, 24}},
			{"sr8000-seq", []int{24}},
			{"sr2201", []int{16}},
			{"sx5", []int{4}},
			{"sx4", []int{16, 8, 4}},
			{"hpv", []int{7}},
			{"sv1", []int{15}},
		}
	}
	return []struct {
		key   string
		procs []int
	}{
		{"t3e", []int{64, 24, 2}},
		{"sr8000-rr", []int{24}},
		{"sr8000-seq", []int{24}},
		{"sr2201", []int{16}},
		{"sx5", []int{4}},
		{"sx4", []int{16, 8, 4}},
		{"hpv", []int{7}},
		{"sv1", []int{15}},
	}
}

func beffFor(key string, procs int) (*machine.Profile, *core.Result) {
	p, err := machine.Lookup(key)
	fatal(err)
	w, err := p.BuildWorld(procs)
	fatal(err)
	res, err := core.Run(w, core.Options{
		MemoryPerProc: p.MemoryPerProc,
		MaxLooplength: *maxLoop,
		Reps:          1,
		SkipAnalysis:  true,
	})
	fatal(err)
	return p, res
}

func runTable1() {
	fmt.Println("=== Table 1: Effective Benchmark Results ===")
	var rows []report.Table1Row
	for _, m := range table1Sizes() {
		for _, n := range m.procs {
			p, res := beffFor(m.key, n)
			// Like the paper's table, quote the ping-pong only once
			// per machine (it is measured within each partition; the
			// largest is the representative one).
			row := report.FromBeff(p.Name, res)
			if n != m.procs[0] {
				row.PingPong = 0
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr, "  measured %s @%d\n", m.key, n)
		}
	}
	fmt.Print(report.Table1(rows))
	fmt.Println()
	var csv [][]string
	for _, r := range rows {
		csv = append(csv, []string{
			r.System, fmt.Sprint(r.Procs),
			fmt.Sprintf("%.1f", r.Beff/1e6),
			fmt.Sprintf("%.1f", r.Beff/float64(r.Procs)/1e6),
			fmt.Sprint(r.Lmax),
			fmt.Sprintf("%.1f", r.PingPong/1e6),
			fmt.Sprintf("%.1f", r.AtLmax/1e6),
			fmt.Sprintf("%.1f", r.RingOnly/float64(r.Procs)/1e6),
		})
	}
	writeCSV("table1.csv",
		[]string{"system", "procs", "beff_mbps", "beff_per_proc", "lmax_bytes", "pingpong_mbps", "at_lmax_mbps", "ring_per_proc_mbps"},
		csv)
}

func runFig1() {
	fmt.Println("=== Figure 1: Balance factor ===")
	var rows []report.BalanceRow
	for _, m := range table1Sizes() {
		n := m.procs[0]
		p, res := beffFor(m.key, n)
		rows = append(rows, report.BalanceRow{
			System: p.Name, Procs: n, Beff: res.Beff, RmaxGF: p.RmaxGF(n),
		})
	}
	fmt.Print(report.BalanceChart(rows))
	fmt.Println()
}

func ioSetup(p *machine.Profile) beffio.PartitionSetup {
	return func(n int) (mpi.WorldConfig, *simfs.FS, error) {
		w, err := p.BuildIOWorld(n)
		if err != nil {
			return mpi.WorldConfig{}, nil, err
		}
		fs, err := p.BuildFS()
		return w, fs, err
	}
}

func runFig3() {
	fmt.Println("=== Figure 3: b_eff_io vs partition size, T3E vs SP, several T ===")
	sizes := []int{2, 4, 8, 16, 32}
	if *full {
		sizes = []int{8, 16, 32, 64, 128}
	}
	ts := []float64{*ioT / 2, *ioT, *ioT * 2}
	var series []report.Series
	for _, key := range []string{"t3e", "sp"} {
		p, err := machine.Lookup(key)
		fatal(err)
		for _, t := range ts {
			opt := beffio.Options{
				T:     des.DurationOf(t),
				MPart: p.MPart(),
				// The paper's Fig. 3 data was "measured partially
				// without pattern type 3".
				SkipTypes:         []beffio.PatternType{beffio.Segmented},
				MaxRepsPerPattern: 1 << 14,
			}
			results, err := beffio.Sweep(ioSetup(p), sizes, opt)
			fatal(err)
			s := report.Series{Name: fmt.Sprintf("%s T=%.0fs", p.Key, t), Points: map[int]float64{}}
			for _, r := range results {
				s.Points[r.Procs] = r.BeffIO
			}
			series = append(series, s)
			fmt.Fprintf(os.Stderr, "  swept %s T=%.0fs\n", key, t)
		}
	}
	fmt.Print(report.SweepChart("b_eff_io (MB/s) over number of I/O processes", series))
	fmt.Println()
	var csv [][]string
	for _, s := range series {
		for procs, v := range s.Points {
			csv = append(csv, []string{s.Name, fmt.Sprint(procs), fmt.Sprintf("%.2f", v/1e6)})
		}
	}
	writeCSV("fig3.csv", []string{"series", "procs", "beffio_mbps"}, csv)
}

func runFig4() {
	fmt.Println("=== Figure 4: per-pattern bandwidth, three access methods, four systems ===")
	procs := map[string]int{"sp": 8, "t3e": 16, "sr8000-seq": 8, "sx5": 4}
	if *full {
		procs = map[string]int{"sp": 64, "t3e": 32, "sr8000-seq": 16, "sx5": 4}
	}
	for _, key := range []string{"sp", "t3e", "sr8000-seq", "sx5"} {
		p, err := machine.Lookup(key)
		fatal(err)
		w, fs, err := ioSetup(p)(procs[key])
		fatal(err)
		res, err := beffio.Run(w, fs, beffio.Options{
			T:                 des.DurationOf(*ioT),
			MPart:             p.MPart(),
			MaxRepsPerPattern: 1 << 14,
		})
		fatal(err)
		fmt.Printf("\n--- %s (%s) ---\n", p.Name, fs.Config().Name)
		fmt.Print(report.BeffIOProtocol(res))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, "fig4_"+key+".csv"))
			fatal(err)
			fatal(report.BeffIOCSV(f, key, res))
			fatal(f.Close())
		}
		fmt.Fprintf(os.Stderr, "  detailed %s\n", key)
	}
	fmt.Println()
}

func runFig5() {
	fmt.Println("=== Figure 5: final b_eff_io comparison ===")
	sizesFor := map[string][]int{
		"sp":         {4, 8, 16},
		"t3e":        {4, 8, 16},
		"sr8000-seq": {4, 8},
		"sx5":        {2, 4},
	}
	if *full {
		sizesFor = map[string][]int{
			"sp":         {16, 32, 64, 128},
			"t3e":        {16, 32, 64, 128},
			"sr8000-seq": {8, 16},
			"sx5":        {4, 8},
		}
	}
	var series []report.Series
	for _, key := range []string{"sp", "t3e", "sr8000-seq", "sx5"} {
		p, err := machine.Lookup(key)
		fatal(err)
		results, err := beffio.Sweep(ioSetup(p), sizesFor[key], beffio.Options{
			T:                 des.DurationOf(*ioT),
			MPart:             p.MPart(),
			MaxRepsPerPattern: 1 << 14,
		})
		fatal(err)
		s := report.Series{Name: p.Name, Points: map[int]float64{}}
		for _, r := range results {
			s.Points[r.Procs] = r.BeffIO
		}
		series = append(series, s)
		best := beffio.SystemValue(results)
		fmt.Printf("%-28s system b_eff_io = %8.1f MB/s (at %d procs)\n", p.Key, best.BeffIO/1e6, best.Procs)
		fmt.Fprintf(os.Stderr, "  swept %s\n", key)
	}
	fmt.Println()
	fmt.Print(report.SweepChart("b_eff_io (MB/s) per partition size", series))
	fmt.Println()
	var csv [][]string
	for _, s := range series {
		for procs, v := range s.Points {
			csv = append(csv, []string{s.Name, fmt.Sprint(procs), fmt.Sprintf("%.2f", v/1e6)})
		}
	}
	writeCSV("fig5.csv", []string{"series", "procs", "beffio_mbps"}, csv)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
