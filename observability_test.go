package beff_test

// Integration tests for the observability layer and the multi-
// subscriber Observer API: every subscriber kind — obs instruments,
// fault injection, tracing, invariant checking, and the deprecated
// single-callback fields — attaches to one run at the same time, and
// none of them moves a single result byte.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"github.com/hpcbench/beff"
	"github.com/hpcbench/beff/internal/check"
	"github.com/hpcbench/beff/internal/cli"
	"github.com/hpcbench/beff/internal/des"
	"github.com/hpcbench/beff/internal/mpi"
	"github.com/hpcbench/beff/internal/obs"
	"github.com/hpcbench/beff/internal/perturb"
	"github.com/hpcbench/beff/internal/trace"
)

// TestObserversAttachSimultaneously is the acceptance test for the
// Observer API redesign: trace, perturbation, invariant checking, obs
// instruments, and two independent ad-hoc observers all watch one
// b_eff run at once — no chaining, no ordering constraints — and each
// of them sees the full event stream.
func TestObserversAttachSimultaneously(t *testing.T) {
	p, err := beff.LookupMachine("t3e")
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.BuildWorld(8)
	if err != nil {
		t.Fatal(err)
	}

	// Subscriber 1: obs instruments, streaming to a -metrics file.
	c := cli.New("test")
	c.MetricsPath = filepath.Join(t.TempDir(), "metrics.ndjson")
	o := c.StartObs()
	o.InstrumentWorld(&w)
	o.InstrumentNet(w.Net)

	// Subscriber 2: fault injection.
	pr, err := perturb.Load("stormy")
	if err != nil {
		t.Fatal(err)
	}
	pr.ApplyNet(w.Net, 1)

	// Subscriber 3: a trace collector.
	col := trace.New()
	w.Net.Observe(col.OnTransfer)

	// Subscriber 4: the invariant checker.
	chk := check.New()
	chk.WatchWorld(&w)
	chk.WatchNet(w.Net)

	// Subscriber 5: an ad-hoc observer through the new API.
	var obsSends, obsAdvances atomic.Int64
	w.Observe(mpi.Observer{
		OnSend:         func(src, dst int, size int64, at des.Time) { obsSends.Add(1) },
		OnClockAdvance: func(from, to des.Time) { obsAdvances.Add(1) },
	})

	// Subscriber 6: a second independent ad-hoc observer — composition
	// must keep feeding every subscriber alongside all of the above.
	var extraSends, extraMatches, extraAdvances, extraTransfers atomic.Int64
	w.Observe(mpi.Observer{
		OnSend:         func(src, dst int, size int64, at des.Time) { extraSends.Add(1) },
		OnMatch:        func(src, dst int, size int64, at des.Time) { extraMatches.Add(1) },
		OnClockAdvance: func(from, to des.Time) { extraAdvances.Add(1) },
	})
	w.Net.Observe(func(src, dst int, size int64, start, end des.Time) { extraTransfers.Add(1) })

	res, err := runCore(w)
	if err != nil {
		t.Fatal(err)
	}
	chk.VerifyBeff(res)
	if err := chk.Finish(); err != nil {
		t.Fatalf("invariants violated with every subscriber attached: %v", err)
	}
	o.Close()

	snap := o.Reg.Snapshot()
	sends, _ := snap.Get("mpi_eager_messages_total")
	rdv, _ := snap.Get("mpi_rendezvous_messages_total")
	transfers, _ := snap.Get("simnet_transfers_total")
	dispatches, _ := snap.Get("des_dispatches_total")
	sum := col.Summarize()

	if extraSends.Load() == 0 || extraMatches.Load() == 0 || extraAdvances.Load() == 0 || extraTransfers.Load() == 0 {
		t.Fatalf("a second observer saw nothing: sends %d, matches %d, advances %d, transfers %d",
			extraSends.Load(), extraMatches.Load(), extraAdvances.Load(), extraTransfers.Load())
	}
	if got := int64(sends.Value + rdv.Value); got != extraSends.Load() || got != obsSends.Load() {
		t.Fatalf("send streams disagree: metrics %d, second observer %d, first observer %d",
			got, extraSends.Load(), obsSends.Load())
	}
	if int64(transfers.Value) != extraTransfers.Load() {
		t.Fatalf("transfer streams disagree: metrics %.0f, observer %d", transfers.Value, extraTransfers.Load())
	}
	if int64(sum.Messages) != extraTransfers.Load() {
		t.Fatalf("trace collector saw %d messages, observer hook %d", sum.Messages, extraTransfers.Load())
	}
	if dispatches.Value == 0 || obsAdvances.Load() == 0 {
		t.Fatalf("scheduler stream missing: %v dispatches, %d observed advances", dispatches.Value, obsAdvances.Load())
	}

	// The -metrics stream must be valid NDJSON.
	data, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("metrics stream is empty")
	}
	for i, line := range lines {
		var s obs.Snapshot
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("metrics line %d is not valid JSON: %v", i, err)
		}
	}
}

// TestObservabilityIsByteInvisible pins the core obs guarantee: a run
// with the full observer stack attached produces a byte-identical
// result protocol to a bare run of the same cell.
func TestObservabilityIsByteInvisible(t *testing.T) {
	run := func(instrument bool) []byte {
		t.Helper()
		p, err := beff.LookupMachine("t3e")
		if err != nil {
			t.Fatal(err)
		}
		w, err := p.BuildWorld(8)
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			o := cli.NewObs(obs.New())
			o.InstrumentWorld(&w)
			o.InstrumentNet(w.Net)
			col := trace.New()
			w.Net.Observe(col.OnTransfer)
			w.Observe(mpi.Observer{OnSend: func(src, dst int, size int64, at des.Time) {}})
			w.Net.Observe(func(src, dst int, size int64, start, end des.Time) {})
		}
		res, err := runCore(w)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	bare, observed := run(false), run(true)
	if !bytes.Equal(bare, observed) {
		t.Fatalf("observability moved the results: bare %d bytes, observed %d bytes", len(bare), len(observed))
	}
}

// BenchmarkObsOverheadT3E64 measures the acceptance cell — 64 ranks on
// the torus machine — with the registry disabled (nil metrics, the
// shipping default) and enabled, so `go test -bench ObsOverhead` shows
// the cost of the instrumentation branch and of the live counters:
//
//	go test -bench ObsOverheadT3E64 -benchtime 3x
//
// The disabled variant must track the plain cell within noise (the
// ≤ 2% acceptance bound is enforced by comparing BENCH_core.json
// across PRs, not here — benchmarks report, they do not fail).
func BenchmarkObsOverheadT3E64(b *testing.B) {
	p, err := beff.LookupMachine("t3e")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := p.BuildWorld(64)
				if err != nil {
					b.Fatal(err)
				}
				if mode.enabled {
					o := cli.NewObs(obs.New())
					o.InstrumentWorld(&w)
					o.InstrumentNet(w.Net)
				}
				if _, err := runCore(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
