package beff_test

import (
	"testing"

	"github.com/hpcbench/beff"
	"github.com/hpcbench/beff/internal/beffio"
	"github.com/hpcbench/beff/internal/des"
)

func TestMachinesListed(t *testing.T) {
	keys := beff.Machines()
	if len(keys) < 9 {
		t.Fatalf("only %d machines", len(keys))
	}
	for _, want := range []string{"t3e", "sp", "sx5", "sr8000-rr", "sr8000-seq", "cluster"} {
		found := false
		for _, k := range keys {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("machine %q missing", want)
		}
	}
}

func TestMeasureBandwidthFacade(t *testing.T) {
	res, err := beff.MeasureBandwidth("cluster", 8, beff.BandwidthOptions{
		MaxLooplength: 2, Reps: 1, SkipAnalysis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Beff <= 0 || res.Procs != 8 {
		t.Errorf("res = %+v", res)
	}
	// Memory size must default from the profile: cluster has 512 MB →
	// L_max 4 MB.
	if res.Lmax != 4<<20 {
		t.Errorf("Lmax = %d, want profile default", res.Lmax)
	}
}

func TestMeasureBandwidthUnknownMachine(t *testing.T) {
	if _, err := beff.MeasureBandwidth("pdp11", 2, beff.BandwidthOptions{}); err == nil {
		t.Fatal("unknown machine should error")
	}
}

func TestMeasureIOFacade(t *testing.T) {
	res, err := beff.MeasureIO("cluster", 4, beff.IOOptions{
		T: 5 * des.Second, MaxRepsPerPattern: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BeffIO <= 0 {
		t.Error("no b_eff_io value")
	}
	// MPart must default from the profile (cluster: 512 MB/proc, 1
	// proc/node → max(2MB, 4MB) = 4 MB).
	if res.MPart != 4<<20 {
		t.Errorf("MPart = %d", res.MPart)
	}
}

func TestMeasureIONoFSMachine(t *testing.T) {
	// sr2201 has no I/O model.
	if _, err := beff.MeasureIO("sr2201", 4, beff.IOOptions{T: des.Second}); err == nil {
		t.Fatal("machine without fs should error")
	}
}

func TestMeasureIOSweepFacade(t *testing.T) {
	results, err := beff.MeasureIOSweep("cluster", []int{2, 4}, beff.IOOptions{
		T: 4 * des.Second, MaxRepsPerPattern: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	best := beffio.SystemValue(results)
	if best.BeffIO <= 0 {
		t.Error("system value missing")
	}
}

func TestBalanceFactorFacade(t *testing.T) {
	p, err := beff.LookupMachine("cluster")
	if err != nil {
		t.Fatal(err)
	}
	res, err := beff.MeasureBandwidth("cluster", 4, beff.BandwidthOptions{
		MaxLooplength: 1, Reps: 1, SkipAnalysis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bf := beff.BalanceFactor(p, res)
	if bf <= 0 || bf > 10 {
		t.Errorf("balance factor = %v", bf)
	}
}
