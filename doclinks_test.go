package beff_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks walks every Markdown file in the repository and checks
// that relative [text](target) links point at files that exist. The
// docs cross-reference each other heavily (README → docs/API.md →
// docs/OPERATIONS.md → EXPERIMENTS.md …); a rename or deletion must
// fail here instead of leaving a dangling pointer for a reader to hit.
func TestDocLinks(t *testing.T) {
	// Inline links whose target is not an absolute URL or an
	// in-page anchor. Images (![alt](img)) match too, which is
	// intended: a missing image is just as broken.
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)

	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".beffcache" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Markdown files found — is the test running at the repo root?")
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range link.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external URL — not ours to verify
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %q does not exist (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
